package difftest

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/progen"
)

// genSrc is the campaign's seed-to-program mapping, shared for readability.
func genSrc(seed int64) string { return progen.GenerateSeed(seed) }

// TestCleanCampaign is the harness's core promise in miniature: a batch of
// generated programs through every module-level transform with zero
// semantics-breaking cells. `make fuzz-smoke` runs the same campaign at
// >=200 programs; this keeps `go test` fast while still covering every
// transform.
func TestCleanCampaign(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{N: 25, Seed: 1000, Workers: 0, Set: "module"})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleErrs != 0 {
		t.Fatalf("%d oracle failures: %+v", res.OracleErrs, res.Failures[0])
	}
	if n := res.TotalFailures(); n != 0 {
		f := res.Failures[0]
		t.Fatalf("%d failures; first: transform=%s seed=%d verdict=%s detail=%s\nrepro:\n%s",
			n, f.Transform, f.Seed, f.Verdict, f.Detail, f.Repro)
	}
	for name, st := range res.Stats {
		if st.Equal == 0 {
			t.Errorf("transform %s never produced an equal cell", name)
		}
	}
}

// TestCampaignDeterministic pins worker-count independence: the same seed
// must yield identical per-transform stats for 1 worker and many.
func TestCampaignDeterministic(t *testing.T) {
	a, err := RunCampaign(CampaignConfig{N: 8, Seed: 42, Workers: 1, Set: "O2"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(CampaignConfig{N: 8, Seed: 42, Workers: 4, Set: "O2"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(statsNoTiming(a), statsNoTiming(b)) {
		t.Fatalf("stats differ across worker counts:\n%+v\nvs\n%+v", statsNoTiming(a), statsNoTiming(b))
	}
}

func statsNoTiming(r *CampaignResult) map[string]TransformStats {
	out := make(map[string]TransformStats, len(r.Stats))
	for k, v := range r.Stats {
		s := *v
		s.Nanos = 0
		out[k] = s
	}
	return out
}

// brokenSubPass flips every OpSub to OpAdd — a classic "one opcode off"
// miscompile that must be caught by the differential oracle.
func brokenSubPass(src string, _ *rand.Rand) (*ir.Module, error) {
	m, err := minic.CompileSource(src, "prog")
	if err != nil {
		return nil, err
	}
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpSub {
					in.Op = ir.OpAdd
				}
			}
		}
	}
	return m, nil
}

// TestBrokenPassCaughtAndShrunk is the acceptance self-test: a deliberately
// miscompiling pass must be caught by the harness and shrunk to a repro
// under 30 lines that still exhibits the failure.
func TestBrokenPassCaughtAndShrunk(t *testing.T) {
	tr := Transform{Name: "broken-sub", Group: "pass", Apply: brokenSubPass}
	caught := false
	for seed := int64(0); seed < 20 && !caught; seed++ {
		src := genSrc(seed)
		oracle, err := Oracle(src)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		v, _ := CheckOne(src, tr, rand.New(rand.NewSource(seed)), oracle)
		if !v.Failure() {
			continue
		}
		caught = true
		repro := ShrinkFailure(src, tr, seed)
		if lines := strings.Count(repro, "\n") + 1; lines >= 30 {
			t.Errorf("shrunk repro still %d lines (want <30):\n%s", lines, repro)
		}
		// The shrunk repro must still fail, or the shrinker lied.
		oracle2, err := Oracle(repro)
		if err != nil {
			t.Fatalf("shrunk repro stopped compiling: %v\n%s", err, repro)
		}
		v2, _ := CheckOne(repro, tr, rand.New(rand.NewSource(seed)), oracle2)
		if !v2.Failure() {
			t.Fatalf("shrunk repro no longer fails:\n%s", repro)
		}
		t.Logf("caught at seed %d; shrunk to %d bytes:\n%s", seed, len(repro), repro)
	}
	if !caught {
		t.Fatal("broken sub->add pass was never caught over 20 seeds")
	}
}

// brokenTermPass deletes the terminator of main's last block, producing a
// structurally invalid module that ir.Verify must reject.
func brokenTermPass(src string, _ *rand.Rand) (*ir.Module, error) {
	m, err := minic.CompileSource(src, "prog")
	if err != nil {
		return nil, err
	}
	f := m.Func("main")
	b := f.Blocks[len(f.Blocks)-1]
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	return m, nil
}

// TestVerifyFailCaught pins that structural breakage surfaces as a
// VerifyFail verdict before the interpreter ever runs the module.
func TestVerifyFailCaught(t *testing.T) {
	tr := Transform{Name: "broken-term", Group: "pass", Apply: brokenTermPass}
	src := genSrc(3)
	oracle, err := Oracle(src)
	if err != nil {
		t.Fatal(err)
	}
	v, detail := CheckOne(src, tr, rand.New(rand.NewSource(1)), oracle)
	if v != VerifyFail {
		t.Fatalf("verdict = %s (%s), want verify-fail", v, detail)
	}
}

// TestCampaignWritesCrashers checks the failure path end to end: a campaign
// run with a broken transform must write annotated, shrunk crasher files.
func TestCampaignWritesCrashers(t *testing.T) {
	dir := t.TempDir()
	tr := Transform{Name: "broken-sub", Group: "pass", Apply: brokenSubPass}
	var failures []Failure
	for seed := int64(0); seed < 20 && len(failures) == 0; seed++ {
		src := genSrc(seed)
		oracle, err := Oracle(src)
		if err != nil {
			t.Fatal(err)
		}
		if v, detail := CheckOne(src, tr, rand.New(rand.NewSource(seed)), oracle); v.Failure() {
			failures = append(failures, Failure{
				Seed: seed, Transform: tr.Name, Verdict: v, Detail: detail,
				Repro: ShrinkFailure(src, tr, seed),
			})
		}
	}
	if len(failures) == 0 {
		t.Fatal("no failure to exercise the crasher writer")
	}
	if err := WriteCrashers(dir, failures); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no crasher files written (err=%v)", err)
	}
	body, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"// transform: broken-sub", "// seed:", "// verdict:", "int main"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("crasher file missing %q:\n%s", want, body)
		}
	}
}

// TestTransformSets pins the registry contents so a transform can't silently
// drop out of the fuzzed set.
func TestTransformSets(t *testing.T) {
	mod, err := Transforms("module")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tr := range mod {
		names = append(names, tr.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range append(append([]string{}, PassNames...),
		"O1", "O2", "O3", "bcf", "fla", "sub", "ollvm", "bcf+O2", "fla+O3", "ollvm+O2") {
		if !strings.Contains(joined+" ", want+" ") {
			t.Errorf("module set missing transform %q (have %s)", want, joined)
		}
	}
	all, err := Transforms("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(mod)+4 {
		t.Errorf("all set has %d transforms, want %d", len(all), len(mod)+4)
	}
	smoke, err := Transforms("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(smoke) != len(mod)-3 {
		t.Errorf("smoke set has %d transforms, want %d (module minus composed)", len(smoke), len(mod)-3)
	}
	if _, err := Transforms("nosuch"); err == nil {
		t.Error("unknown set did not error")
	}
	one, err := Transforms("gvn")
	if err != nil || len(one) != 1 || one[0].Name != "gvn" {
		t.Errorf("single-transform set: %v, %v", one, err)
	}
}

// TestShrinkReducesSize sanity-checks the shrinker on a synthetic predicate:
// "contains a subtraction" — it must strip everything else away.
func TestShrinkReducesSize(t *testing.T) {
	src := genSrc(5)
	if !strings.Contains(src, "-") {
		t.Skip("seed 5 program has no subtraction")
	}
	out := Shrink(src, func(cand string) bool {
		if _, err := minic.CompileSource(cand, "x"); err != nil {
			return false
		}
		return strings.Contains(cand, "-")
	})
	if len(out) >= len(src) {
		t.Fatalf("shrinker made no progress: %d -> %d bytes", len(src), len(out))
	}
}
