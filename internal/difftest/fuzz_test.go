package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/progen"
)

// FuzzPasses drives every individual pass and the O1-O3 pipelines over
// generator seeds. The seed corpus under testdata/fuzz runs on every plain
// `go test`; `go test -fuzz FuzzPasses ./internal/difftest` explores new
// seeds indefinitely.
func FuzzPasses(f *testing.F) {
	for _, s := range []int64{0, 1, 7, 42, 5069, 90017} {
		f.Add(s)
	}
	trs, err := Transforms("smoke")
	if err != nil {
		f.Fatal(err)
	}
	var pp []Transform
	for _, tr := range trs {
		if tr.Group == "pass" || tr.Group == "pipeline" {
			pp = append(pp, tr)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := genFuzzProgram(seed)
		oracle, err := Oracle(src)
		if err != nil {
			t.Fatalf("oracle: %v\nsource:\n%s", err, src)
		}
		for _, tr := range pp {
			rng := rand.New(rand.NewSource(cellSeed(seed, tr.Name)))
			if v, detail := CheckOne(src, tr, rng, oracle); v.Failure() {
				t.Fatalf("transform %s: %s: %s\nsource:\n%s", tr.Name, v, detail, src)
			}
		}
	})
}

// FuzzObfus drives the four obfuscators the same way.
func FuzzObfus(f *testing.F) {
	for _, s := range []int64{0, 3, 11, 77, 90001} {
		f.Add(s)
	}
	trs, err := Transforms("smoke")
	if err != nil {
		f.Fatal(err)
	}
	var ob []Transform
	for _, tr := range trs {
		if tr.Group == "obfus" {
			ob = append(ob, tr)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := genFuzzProgram(seed)
		oracle, err := Oracle(src)
		if err != nil {
			t.Fatalf("oracle: %v\nsource:\n%s", err, src)
		}
		for _, tr := range ob {
			rng := rand.New(rand.NewSource(cellSeed(seed, tr.Name)))
			if v, detail := CheckOne(src, tr, rng, oracle); v.Failure() {
				t.Fatalf("transform %s: %s: %s\nsource:\n%s", tr.Name, v, detail, src)
			}
		}
	})
}

// genFuzzProgram maps a fuzz seed to a program using the smoke shape, so
// one fuzz execution stays cheap enough for high throughput.
func genFuzzProgram(seed int64) string {
	return progen.GenerateCfg(rand.New(rand.NewSource(seed)), SmokeGen())
}
