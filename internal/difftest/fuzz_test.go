package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/progen"
)

// FuzzPasses drives every individual pass and the O1-O3 pipelines over
// generator seeds. Each execution compiles the program once and hands every
// transform a private copy, alternating between the two ways the repo makes
// one — a deep pointer-graph clone and a thaw of the flat view — so both
// copy paths face the full oracle equivalence check on every seed. The seed
// corpus under testdata/fuzz runs on every plain `go test`;
// `go test -fuzz FuzzPasses ./internal/difftest` explores new seeds
// indefinitely.
func FuzzPasses(f *testing.F) {
	for _, s := range []int64{0, 1, 7, 42, 5069, 90017} {
		f.Add(s)
	}
	trs, err := Transforms("smoke")
	if err != nil {
		f.Fatal(err)
	}
	var pp []Transform
	for _, tr := range trs {
		if tr.Group == "pass" || tr.Group == "pipeline" {
			pp = append(pp, tr)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := genFuzzProgram(seed)
		oracle, err := Oracle(src)
		if err != nil {
			t.Fatalf("oracle: %v\nsource:\n%s", err, src)
		}
		master, err := minic.CompileSource(src, "prog")
		if err != nil {
			t.Fatalf("compile: %v\nsource:\n%s", err, src)
		}
		fl := ir.Flatten(master)
		for i, tr := range pp {
			var m *ir.Module
			copyPath := "clone"
			if i%2 == 0 {
				m = master.Clone()
			} else {
				m, copyPath = ir.Thaw(fl), "thaw"
			}
			rng := rand.New(rand.NewSource(cellSeed(seed, tr.Name)))
			if err := tr.ApplyMod(m, rng); err != nil {
				t.Fatalf("transform %s (%s copy): %v\nsource:\n%s", tr.Name, copyPath, err, src)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("transform %s (%s copy): verify: %v\nsource:\n%s", tr.Name, copyPath, err, src)
			}
			got := Observe(m, budgetFor(oracle.Steps))
			if v, detail := Equivalent(oracle, got); v.Failure() {
				t.Fatalf("transform %s (%s copy): %s: %s\nsource:\n%s", tr.Name, copyPath, v, detail, src)
			}
		}
	})
}

// FuzzThaw is the round-trip obligation as a fuzz target: for any generated
// program, Flatten then Thaw must yield a verifying module that prints
// exactly like the original and re-flattens to byte-identical tables.
func FuzzThaw(f *testing.F) {
	for _, s := range []int64{0, 2, 19, 101, 74093} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := genFuzzProgram(seed)
		m, err := minic.CompileSource(src, "prog")
		if err != nil {
			t.Fatalf("compile: %v\nsource:\n%s", err, src)
		}
		want := m.String()
		fl := ir.Flatten(m)
		th := ir.Thaw(fl)
		if err := th.Verify(); err != nil {
			t.Fatalf("thawed module fails verify: %v\nsource:\n%s", err, src)
		}
		if got := th.String(); got != want {
			t.Fatalf("thawed module prints differently:\n--- original ---\n%s\n--- thawed ---\n%s\nsource:\n%s", want, got, src)
		}
		if d := ir.FlatDiff(fl, ir.Flatten(th)); d != "" {
			t.Fatalf("thawed module re-flattens differently: %s\nsource:\n%s", d, src)
		}
	})
}

// FuzzObfus drives the four obfuscators the same way.
func FuzzObfus(f *testing.F) {
	for _, s := range []int64{0, 3, 11, 77, 90001} {
		f.Add(s)
	}
	trs, err := Transforms("smoke")
	if err != nil {
		f.Fatal(err)
	}
	var ob []Transform
	for _, tr := range trs {
		if tr.Group == "obfus" {
			ob = append(ob, tr)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := genFuzzProgram(seed)
		oracle, err := Oracle(src)
		if err != nil {
			t.Fatalf("oracle: %v\nsource:\n%s", err, src)
		}
		for _, tr := range ob {
			rng := rand.New(rand.NewSource(cellSeed(seed, tr.Name)))
			if v, detail := CheckOne(src, tr, rng, oracle); v.Failure() {
				t.Fatalf("transform %s: %s: %s\nsource:\n%s", tr.Name, v, detail, src)
			}
		}
	})
}

// genFuzzProgram maps a fuzz seed to a program using the smoke shape, so
// one fuzz execution stays cheap enough for high throughput.
func genFuzzProgram(seed int64) string {
	return progen.GenerateCfg(rand.New(rand.NewSource(seed)), SmokeGen())
}
