package difftest

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/progcache"
	"repro/internal/progen"
)

// SmokeGen is the lighter program shape used by `make fuzz-smoke`: shallower
// nesting and shorter bodies keep the interpreter cost per cell low enough
// that a 200-program campaign over every pass, pipeline and obfuscator
// finishes in seconds even on one core.
func SmokeGen() progen.Config {
	return progen.Config{MaxHelpers: 2, MaxStmts: 6, MaxDepth: 2,
		Structs: true, Floats: true, Pointers: true, Globals: true}
}

// CampaignConfig bounds one fuzz campaign.
type CampaignConfig struct {
	N       int    // programs to generate
	Seed    int64  // base seed; program i uses Seed+i
	Workers int    // parallel workers (clamped; <=0 means all cores)
	Set     string // transform set for Transforms()

	// CrashersDir, when non-empty, receives one shrunk minimal repro per
	// failing (program, transform) cell.
	CrashersDir string
	// Shrink controls whether failures are minimized before reporting.
	Shrink bool
	// Gen overrides the program shape; zero value means progen defaults.
	Gen progen.Config
	// Engine selects the execution engine for transformed runs ("" or
	// "tree" = interpreter only). Any other engine is cross-validated
	// against the tree interpreter on every cell: the two must agree
	// bit-for-bit (Ret, Output, Steps, trap kind) or the cell fails with
	// EngineDiverged.
	Engine string
}

// TransformStats aggregates the verdicts of one transform over a campaign.
type TransformStats struct {
	Equal          int64
	TrapSkipped    int64
	Mismatch       int64
	EngineDiverged int64
	VerifyFail     int64
	Errors         int64
	Nanos          int64
}

// Failures returns the count of semantics-breaking verdicts.
func (s *TransformStats) Failures() int64 {
	return s.Mismatch + s.EngineDiverged + s.VerifyFail + s.Errors
}

// Failure is one semantics-breaking cell, with its (possibly shrunk) repro.
type Failure struct {
	Seed      int64
	Transform string
	Verdict   Verdict
	Detail    string
	Repro     string
}

// CampaignResult is the outcome of RunCampaign.
type CampaignResult struct {
	Programs   int
	OracleErrs int64 // programs the oracle itself failed to compile/verify
	Stats      map[string]*TransformStats
	Failures   []Failure
}

// TotalFailures sums semantics-breaking cells across all transforms.
func (r *CampaignResult) TotalFailures() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.Failures()
	}
	return n
}

// TransformNames returns the exercised transforms in sorted order.
func (r *CampaignResult) TransformNames() []string {
	names := make([]string, 0, len(r.Stats))
	for n := range r.Stats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// cellSeed derives the RNG seed for one (program, transform) cell. It
// depends only on the program seed and the transform name, so campaign
// results are identical for any worker count.
func cellSeed(progSeed int64, transform string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", progSeed, transform)
	return int64(h.Sum64())
}

// RunCampaign generates cfg.N programs and pushes each through every
// transform in cfg.Set, aggregating verdicts per transform and shrinking
// failures when asked. The run is deterministic for a fixed (Seed, N, Set)
// regardless of Workers.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	trs, err := Transforms(cfg.Set)
	if err != nil {
		return nil, err
	}
	var eng interp.Engine
	if cfg.Engine != "" && cfg.Engine != "tree" {
		if eng, err = interp.EngineByName(cfg.Engine); err != nil {
			return nil, err
		}
	}
	gen := cfg.Gen
	if gen == (progen.Config{}) {
		gen = progen.DefaultConfig()
	}

	res := &CampaignResult{Programs: cfg.N, Stats: make(map[string]*TransformStats, len(trs))}
	for _, tr := range trs {
		res.Stats[tr.Name] = &TransformStats{}
	}

	programs := obs.GetCounter("fuzz.programs")
	mismatches := obs.GetCounter("fuzz.mismatches")
	trapskips := obs.GetCounter("fuzz.trapskips")
	verifyfails := obs.GetCounter("fuzz.verifyfail")

	var mu sync.Mutex
	workers := core.ClampWorkers(cfg.Workers, cfg.N)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				progSeed := cfg.Seed + int64(i)
				src := progen.GenerateCfg(rand.New(rand.NewSource(progSeed)), gen)
				programs.Inc()
				oracle, err := Oracle(src)
				if err != nil {
					// A generator bug, not a transform bug: surface it as a
					// campaign-level failure with no transform attached.
					mu.Lock()
					res.OracleErrs++
					res.Failures = append(res.Failures, Failure{
						Seed: progSeed, Transform: "oracle", Verdict: TransformError,
						Detail: err.Error(), Repro: src,
					})
					mu.Unlock()
					continue
				}
				for _, tr := range trs {
					start := time.Now()
					rng := rand.New(rand.NewSource(cellSeed(progSeed, tr.Name)))
					v, detail := CheckOneEngine(src, tr, rng, oracle, eng)
					elapsed := time.Since(start)
					obs.GetTimer("fuzz.transform." + tr.Name).Observe(elapsed)
					mu.Lock()
					st := res.Stats[tr.Name]
					st.Nanos += elapsed.Nanoseconds()
					switch v {
					case Equal:
						st.Equal++
					case TrapSkipped:
						st.TrapSkipped++
						trapskips.Inc()
					case Mismatch:
						st.Mismatch++
						mismatches.Inc()
					case EngineDiverged:
						st.EngineDiverged++
						mismatches.Inc()
					case VerifyFail:
						st.VerifyFail++
						verifyfails.Inc()
					default:
						st.Errors++
						mismatches.Inc()
					}
					if v.Failure() {
						repro := src
						if cfg.Shrink {
							mu.Unlock()
							repro = ShrinkFailureEngine(src, tr, progSeed, eng)
							mu.Lock()
						}
						res.Failures = append(res.Failures, Failure{
							Seed: progSeed, Transform: tr.Name, Verdict: v,
							Detail: detail, Repro: repro,
						})
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cfg.N; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Failure order must not depend on worker scheduling.
	sort.Slice(res.Failures, func(i, j int) bool {
		if res.Failures[i].Seed != res.Failures[j].Seed {
			return res.Failures[i].Seed < res.Failures[j].Seed
		}
		return res.Failures[i].Transform < res.Failures[j].Transform
	})

	if cfg.CrashersDir != "" && len(res.Failures) > 0 {
		if err := WriteCrashers(cfg.CrashersDir, res.Failures); err != nil {
			return res, err
		}
	}
	// Composed transforms route through core.Transform's progcache; a long
	// campaign would otherwise pin every generated source in memory.
	progcache.Reset()
	return res, nil
}

// ShrinkFailure minimizes src while the transform still fails on it. The
// oracle is recomputed per candidate, so shrinking can never convert a
// transform bug into a generator artifact.
func ShrinkFailure(src string, tr Transform, progSeed int64) string {
	return ShrinkFailureEngine(src, tr, progSeed, nil)
}

// ShrinkFailureEngine is ShrinkFailure under a specific execution engine,
// so an EngineDiverged cell shrinks while the engines still disagree
// rather than degenerating to any unrelated failure shape.
func ShrinkFailureEngine(src string, tr Transform, progSeed int64, eng interp.Engine) string {
	return Shrink(src, func(cand string) bool {
		oracle, err := Oracle(cand)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(cellSeed(progSeed, tr.Name)))
		v, _ := CheckOneEngine(cand, tr, rng, oracle, eng)
		return v.Failure()
	})
}

// WriteCrashers writes one annotated repro file per failure into dir.
func WriteCrashers(dir string, failures []Failure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range failures {
		name := fmt.Sprintf("crasher_%s_%d.c", sanitize(f.Transform), f.Seed)
		body := fmt.Sprintf("// transform: %s\n// seed: %d\n// verdict: %s\n// detail: %s\n%s",
			f.Transform, f.Seed, f.Verdict, strings.ReplaceAll(f.Detail, "\n", " "), f.Repro)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
}
