package difftest

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/vm"
)

// TestVMEngineCampaignClean is the engine-conformance promise in miniature:
// a campaign batch cross-validated against the bytecode VM must agree with
// the tree interpreter bit-for-bit (same return, output, trap kind and step
// count) on every transformed cell.
func TestVMEngineCampaignClean(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{N: 15, Seed: 2000, Workers: 0, Set: "module", Engine: "vm"})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleErrs != 0 {
		t.Fatalf("%d oracle failures: %+v", res.OracleErrs, res.Failures[0])
	}
	if n := res.TotalFailures(); n != 0 {
		f := res.Failures[0]
		t.Fatalf("%d failures; first: transform=%s seed=%d verdict=%s detail=%s\nrepro:\n%s",
			n, f.Transform, f.Seed, f.Verdict, f.Detail, f.Repro)
	}
}

// TestBrokenEngineCaughtAndShrunk proves the harness detects engine-level
// miscompiles, not just transform-level ones: a VM with one sabotaged
// bytecode op (add executes as sub) must surface as EngineDiverged and the
// shrinker must reduce the disagreeing program while preserving the
// divergence.
func TestBrokenEngineCaughtAndShrunk(t *testing.T) {
	broken := vm.BrokenEngine()
	tr := Transform{Name: "O0", Group: "pass", Apply: func(src string, _ *rand.Rand) (*ir.Module, error) {
		return minic.CompileSource(src, "prog")
	}}
	caught := false
	for seed := int64(0); seed < 20 && !caught; seed++ {
		src := genSrc(seed)
		oracle, err := Oracle(src)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		v, detail := CheckOneEngine(src, tr, rand.New(rand.NewSource(seed)), oracle, broken)
		if v != EngineDiverged {
			continue
		}
		caught = true
		if !strings.Contains(detail, "vm-broken") {
			t.Errorf("divergence detail does not name the engine: %s", detail)
		}
		repro := ShrinkFailureEngine(src, tr, seed, broken)
		if lines := strings.Count(repro, "\n") + 1; lines >= 30 {
			t.Errorf("shrunk repro still %d lines (want <30):\n%s", lines, repro)
		}
		// The shrunk repro must still diverge, or the shrinker lied.
		oracle2, err := Oracle(repro)
		if err != nil {
			t.Fatalf("shrunk repro stopped compiling: %v\n%s", err, repro)
		}
		v2, _ := CheckOneEngine(repro, tr, rand.New(rand.NewSource(seed)), oracle2, broken)
		if v2 != EngineDiverged {
			t.Fatalf("shrunk repro verdict = %s, want engine-diverged:\n%s", v2, repro)
		}
		t.Logf("caught at seed %d; shrunk to %d bytes:\n%s", seed, len(repro), repro)
	}
	if !caught {
		t.Fatal("sabotaged add->sub bytecode was never caught over 20 seeds")
	}
}
