package difftest

import (
	"math/rand"
	"strings"
	"testing"
)

// TestEquivalentPolicyTable pins the documented trap-equivalence policy at
// the observation level, one row per clause.
func TestEquivalentPolicyTable(t *testing.T) {
	cases := []struct {
		name    string
		oracle  Obs
		got     Obs
		verdict Verdict
	}{
		{"identical clean runs",
			Obs{Ret: 3, Out: "1\n2\n"}, Obs{Ret: 3, Out: "1\n2\n"}, Equal},
		{"same output different exit value",
			Obs{Ret: 3, Out: "1\n"}, Obs{Ret: 4, Out: "1\n"}, Mismatch},
		{"same exit value different output",
			Obs{Ret: 3, Out: "1\n"}, Obs{Ret: 3, Out: "2\n"}, Mismatch},
		{"clean oracle must not trap after transform",
			Obs{Ret: 0, Out: ""}, Obs{Trap: "div0"}, Mismatch},
		{"clean oracle, transform introduced nontermination",
			Obs{Ret: 0, Out: "x\n"}, Obs{Trap: "budget", Out: "x\n"}, Mismatch},
		{"trapping oracle, trap removed, output extended",
			Obs{Trap: "div0", Out: "7\n"}, Obs{Ret: 0, Out: "7\n8\n"}, TrapSkipped},
		{"trapping oracle, trap reordered before output",
			Obs{Trap: "div0", Out: "7\n"}, Obs{Trap: "div0", Out: ""}, TrapSkipped},
		{"trapping oracle, different trap kind",
			Obs{Trap: "div0", Out: ""}, Obs{Trap: "mem", Out: ""}, TrapSkipped},
		{"trapping oracle, divergent output",
			Obs{Trap: "div0", Out: "7\n"}, Obs{Ret: 0, Out: "9\n"}, Mismatch},
		{"trapping oracle never counts as equal",
			Obs{Trap: "div0", Out: "7\n"}, Obs{Trap: "div0", Out: "7\n"}, TrapSkipped},
	}
	for _, tc := range cases {
		if v, detail := Equivalent(tc.oracle, tc.got); v != tc.verdict {
			t.Errorf("%s: verdict %s (want %s) detail=%s", tc.name, v, tc.verdict, detail)
		}
	}
}

// deadTrapSrc guards a division by a variable that SCCP can prove zero: the
// trapping instruction is statically unreachable, and the O2/O3 pipelines
// are entitled to delete it outright.
const deadTrapSrc = `int main() {
  int x = 0;
  int y = 9;
  if (x != 0) {
    y = y / x;
    print(y);
  }
  print(y);
  return 0;
}
`

// guardedTrapSrc runs a loop whose body divides by n only when n is
// nonzero; n stays zero, so the division never executes. Hoisting it out of
// the guard (the classic LICM overreach) would trap.
const guardedTrapSrc = `int main() {
  int n = 0;
  int s = 0;
  for (int i = 0; i < 5; i++) {
    if (n > 0) {
      s += 100 / n;
    }
  }
  print(s);
  return 0;
}
`

// realTrapSrc actually divides by zero after producing output, giving a
// trapping oracle with a nonempty stdout prefix.
const realTrapSrc = `int main() {
  int x = 0;
  print(7);
  return 1 / x;
}
`

// TestTrapSemanticsUnderOptimization pins the policy end to end: transforms
// may delete or reorder traps but never change clean behaviour.
func TestTrapSemanticsUnderOptimization(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		transform string
		// accept lists the admissible verdicts for this cell.
		accept []Verdict
	}{
		// The unreachable trapping division must not stop DCE or the
		// pipelines from preserving the clean run bit-for-bit.
		{"dce keeps clean run with dead trapping division", deadTrapSrc, "dce", []Verdict{Equal}},
		{"sccp folds the dead guard", deadTrapSrc, "sccp", []Verdict{Equal}},
		{"O2 may delete the dead trapping division", deadTrapSrc, "O2", []Verdict{Equal}},
		{"O3 may delete the dead trapping division", deadTrapSrc, "O3", []Verdict{Equal}},

		// LICM must not hoist the guarded division: the oracle completes,
		// so a hoisted (trapping) division would be a Mismatch.
		{"licm leaves guarded division in place", guardedTrapSrc, "licm", []Verdict{Equal}},
		{"O3 preserves the guarded division", guardedTrapSrc, "O3", []Verdict{Equal}},

		// A genuinely trapping program: transforms may keep the trap,
		// change its kind, or remove it — all TrapSkipped, never Equal.
		{"trapping oracle under O2", realTrapSrc, "O2", []Verdict{TrapSkipped}},
		{"trapping oracle under sccp", realTrapSrc, "sccp", []Verdict{TrapSkipped}},
		{"trapping oracle under ollvm", realTrapSrc, "ollvm", []Verdict{TrapSkipped}},
	}
	for _, tc := range cases {
		trs, err := Transforms(tc.transform)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		oracle, err := Oracle(tc.src)
		if err != nil {
			t.Fatalf("%s: oracle: %v", tc.name, err)
		}
		v, detail := CheckOne(tc.src, trs[0], rand.New(rand.NewSource(1)), oracle)
		ok := false
		for _, a := range tc.accept {
			if v == a {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: verdict %s (accept %v) detail=%s", tc.name, v, tc.accept, detail)
		}
	}
}

// TestTrapKindsObserved pins the oracle-side trap classification for the
// kinds a MiniC program can actually reach.
func TestTrapKindsObserved(t *testing.T) {
	cases := []struct {
		name, src, kind string
	}{
		{"division by zero", realTrapSrc, "div0"},
		{"out of bounds", "int main() { int a[3]; int i = 9; a[0] = 1; return a[i * 3]; }", "mem"},
		{"infinite loop hits budget", "int main() { int x = 1; while (x) { x = x + 1; } return 0; }", "budget"},
		{"unbounded recursion overflows stack", "int f(int n) { return f(n + 1); } int main() { return f(0); }", "stack"},
	}
	for _, tc := range cases {
		oracle, err := Oracle(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if oracle.Trap != tc.kind {
			t.Errorf("%s: trap kind %q, want %q", tc.name, oracle.Trap, tc.kind)
		}
	}
}

// TestOracleRejectsBadSource keeps the generator-bug path honest: source
// that does not compile must surface as an error, not a verdict.
func TestOracleRejectsBadSource(t *testing.T) {
	if _, err := Oracle("int main( {"); err == nil ||
		!strings.Contains(err.Error(), "oracle compile") {
		t.Fatalf("err = %v, want oracle compile error", err)
	}
}
