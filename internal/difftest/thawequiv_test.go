package difftest

import "testing"

// TestThawEquivalenceCampaign is the in-tree slice of the clone-vs-thaw
// proof obligation: every module-level transform (passes, pipelines,
// obfuscators and the composed evader pipelines) applied to a thawed copy
// must match the clone-path oracle bit for bit. The full 200-program run is
// `make thaw-smoke`; this keeps a smaller deterministic slice in `go test`.
func TestThawEquivalenceCampaign(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	res, err := RunThawEquivalence(ThawEquivConfig{
		N: n, Seed: 1, Set: "module", Gen: SmokeGen(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleErrs > 0 {
		t.Fatalf("%d generated programs failed to compile", res.OracleErrs)
	}
	// module = 9 passes + 3 pipelines + 4 obfuscators + 3 composed, all of
	// which must carry a module form.
	if res.Transforms != 19 {
		t.Fatalf("want 19 module-level transforms in the module set, got %d", res.Transforms)
	}
	if res.Cells != int64(n*19) {
		t.Fatalf("want %d cells, got %d", n*19, res.Cells)
	}
	for _, f := range res.Failures {
		t.Errorf("seed=%d transform=%s: %.400s", f.Seed, f.Transform, f.Detail)
	}
}

// TestThawEquivalenceDeterministic pins the worker-count independence of the
// campaign: identical results at 1 and 4 workers.
func TestThawEquivalenceDeterministic(t *testing.T) {
	run := func(workers int) *ThawEquivResult {
		res, err := RunThawEquivalence(ThawEquivConfig{
			N: 6, Seed: 99, Workers: workers, Set: "smoke", Gen: SmokeGen(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Cells != b.Cells || a.OracleErrs != b.OracleErrs || len(a.Failures) != len(b.Failures) {
		t.Fatalf("campaign diverged across worker counts: %+v vs %+v", a, b)
	}
}

// TestTransformsCarryModuleForms pins the registry invariant the campaign
// relies on: every non-source transform exposes ApplyMod, and no source
// transform does.
func TestTransformsCarryModuleForms(t *testing.T) {
	trs, err := Transforms("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs {
		hasMod := tr.ApplyMod != nil
		wantMod := tr.Group != "source"
		if hasMod != wantMod {
			t.Errorf("transform %s (group %s): ApplyMod presence = %v, want %v", tr.Name, tr.Group, hasMod, wantMod)
		}
	}
}
