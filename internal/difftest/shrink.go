package difftest

import (
	"repro/internal/minic"
	"repro/internal/obs"
)

// shrinkSteps counts accepted shrink mutations across all campaigns.
var shrinkSteps = obs.GetCounter("fuzz.shrinksteps")

// maxShrinkCandidates bounds the total number of candidate programs one
// Shrink call may test; each test recompiles and reruns the program, so
// this is the shrinker's cost ceiling.
const maxShrinkCandidates = 2000

// Shrink greedily minimizes src while failing(src) stays true, using
// AST-level mutations: deleting top-level declarations, deleting statements,
// replacing control flow by its body, and collapsing expressions to an
// operand. Candidates that no longer parse, compile, or fail are simply
// rejected — the predicate re-checks the full pipeline — so every accepted
// step is a strictly smaller program with the same failure.
func Shrink(src string, failing func(string) bool) string {
	attempts := 0
	for {
		improved := false
		for k := 0; attempts < maxShrinkCandidates; k++ {
			cand, ok := mutateAt(src, k)
			if !ok {
				break // k exhausted the mutation points of this source
			}
			if cand == "" || len(cand) >= len(src) {
				continue
			}
			attempts++
			if failing(cand) {
				src = cand
				shrinkSteps.Inc()
				improved = true
				break // restart enumeration on the smaller program
			}
		}
		if !improved || attempts >= maxShrinkCandidates {
			return src
		}
	}
}

// mutateAt parses src, applies the k-th mutation point, and prints the
// result. ok is false once k runs past the last mutation point (or src
// stopped parsing, which cannot happen for sources Shrink accepts).
func mutateAt(src string, k int) (out string, ok bool) {
	f, err := minic.Parse(src)
	if err != nil {
		return "", false
	}
	m := &mutator{target: k}
	m.file(f)
	if !m.hit {
		return "", false
	}
	return minic.Print(f), true
}

// mutator walks the AST counting mutation points; the target-th point is
// applied in place.
type mutator struct {
	target int
	seen   int
	hit    bool
}

// at reports whether the current mutation point is the target.
func (m *mutator) at() bool {
	hit := m.seen == m.target
	m.seen++
	if hit {
		m.hit = true
	}
	return hit
}

func (m *mutator) file(f *minic.File) {
	out := f.Decls[:0]
	for _, d := range f.Decls {
		fd, isFn := d.(*minic.FuncDecl)
		deletable := !isFn || fd.Name != "main"
		if deletable && m.at() {
			continue
		}
		if isFn {
			fd.Body.List = m.stmts(fd.Body.List)
		}
		out = append(out, d)
	}
	f.Decls = out
}

func (m *mutator) stmts(list []minic.Stmt) []minic.Stmt {
	out := list[:0]
	for _, s := range list {
		if m.at() {
			continue
		}
		out = append(out, m.stmt(s))
	}
	return out
}

// stmt descends into s, possibly replacing it by a simpler statement.
func (m *mutator) stmt(s minic.Stmt) minic.Stmt {
	switch s := s.(type) {
	case *minic.BlockStmt:
		s.List = m.stmts(s.List)
	case *minic.IfStmt:
		if m.at() {
			return m.stmt(s.Then)
		}
		if s.Else != nil && m.at() {
			s.Else = nil
		}
		s.Cond = m.expr(s.Cond)
		s.Then = m.stmt(s.Then)
		if s.Else != nil {
			s.Else = m.stmt(s.Else)
		}
	case *minic.WhileStmt:
		if m.at() {
			return m.stmt(s.Body)
		}
		s.Cond = m.expr(s.Cond)
		s.Body = m.stmt(s.Body)
	case *minic.DoWhileStmt:
		if m.at() {
			return m.stmt(s.Body)
		}
		s.Cond = m.expr(s.Cond)
		s.Body = m.stmt(s.Body)
	case *minic.ForStmt:
		if m.at() {
			return m.stmt(s.Body)
		}
		if s.Cond != nil {
			s.Cond = m.expr(s.Cond)
		}
		s.Body = m.stmt(s.Body)
	case *minic.SwitchStmt:
		s.Tag = m.expr(s.Tag)
		for _, c := range s.Cases {
			c.Body = m.stmts(c.Body)
		}
	case *minic.ReturnStmt:
		if s.Val != nil {
			s.Val = m.expr(s.Val)
		}
	case *minic.ExprStmt:
		s.X = m.expr(s.X)
	case *minic.DeclStmt:
		for _, v := range s.Vars {
			if v.Init != nil {
				v.Init = m.expr(v.Init)
			}
		}
	}
	return s
}

// expr descends into e, possibly collapsing it to an operand or a literal.
// Collapses that change the expression's type (dropping a cast, a deref, a
// float call) produce programs that fail to compile and are rejected by the
// shrink predicate, so no type bookkeeping is needed here.
func (m *mutator) expr(e minic.Expr) minic.Expr {
	switch e := e.(type) {
	case *minic.BinaryExpr:
		if m.at() {
			return m.expr(e.X)
		}
		if m.at() {
			return m.expr(e.Y)
		}
		e.X = m.expr(e.X)
		e.Y = m.expr(e.Y)
	case *minic.UnaryExpr:
		// Collapsing * or & changes types/lvalueness; let the compile
		// check sort out which collapses survive.
		if m.at() {
			return m.expr(e.X)
		}
		e.X = m.expr(e.X)
	case *minic.CondExpr:
		if m.at() {
			return m.expr(e.Then)
		}
		if m.at() {
			return m.expr(e.Else)
		}
		e.Cond = m.expr(e.Cond)
		e.Then = m.expr(e.Then)
		e.Else = m.expr(e.Else)
	case *minic.CallExpr:
		if m.at() {
			return &minic.IntLit{Val: 1}
		}
		for i := range e.Args {
			e.Args[i] = m.expr(e.Args[i])
		}
	case *minic.CastExpr:
		e.X = m.expr(e.X)
	case *minic.ParenExpr:
		if m.at() {
			return m.expr(e.X)
		}
		e.X = m.expr(e.X)
	case *minic.IndexExpr:
		e.Idx = m.expr(e.Idx)
	case *minic.AssignExpr:
		e.RHS = m.expr(e.RHS)
	case *minic.IncDecExpr, *minic.FieldExpr, *minic.Ident, *minic.IntLit,
		*minic.FloatLit, *minic.CharLit, *minic.StringLit:
	}
	return e
}
