package progcache

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
)

// The untrusted tier bounds what wire-originated sources can pin in memory.
// The main cache deliberately never evicts: the harness replays a fixed
// dataset, so every entry is known-useful and pinning it is the point. The
// serving path breaks that assumption — any client can POST an endless
// stream of distinct sources to /v1/classify, and each one (including ones
// that fail to compile) would permanently occupy a process-global slot.
// CompileUntrusted/CompileFlatUntrusted route those compiles through a
// small LRU instead: sources the harness already pinned are served from the
// main cache for free, everything else competes for a bounded number of
// slots, and failed compiles are never retained at all.

// DefaultUntrustedCap is the default slot bound for the untrusted tier:
// large enough that a loadgen replaying a working set re-hits it, small
// enough that hostile traffic tops out in the tens of megabytes.
const DefaultUntrustedCap = 512

type untrustedEntry struct {
	src  string
	mod  *ir.Module
	flat *ir.Flat // built lazily on the first CompileFlatUntrusted for src
}

var (
	utMu    sync.Mutex
	utCap   = DefaultUntrustedCap
	utIndex = make(map[string]*list.Element)
	utOrder = list.New() // front = most recently used

	utHits      = obs.GetCounter("progcache.untrusted.hits")
	utMisses    = obs.GetCounter("progcache.untrusted.misses")
	utEvictions = obs.GetCounter("progcache.untrusted.evictions")
	utEntries   = obs.GetGauge("progcache.untrusted.entries")
)

// SetUntrustedCap bounds the untrusted tier to n entries; 0 (or negative)
// disables retention entirely, turning every untrusted compile into a
// build-and-discard. Shrinking below the current size evicts oldest-first
// immediately.
func SetUntrustedCap(n int) {
	utMu.Lock()
	defer utMu.Unlock()
	utCap = n
	evictOverCapLocked()
}

// UntrustedCap returns the current slot bound.
func UntrustedCap() int {
	utMu.Lock()
	defer utMu.Unlock()
	return utCap
}

// ResetUntrusted empties the tier and zeroes its counters (tests; also part
// of Reset).
func ResetUntrusted() {
	utMu.Lock()
	defer utMu.Unlock()
	utIndex = make(map[string]*list.Element)
	utOrder.Init()
	utEntries.Set(0)
	utHits.Reset()
	utMisses.Reset()
	utEvictions.Reset()
}

func evictOverCapLocked() {
	for utOrder.Len() > utCap && utOrder.Len() > 0 {
		oldest := utOrder.Back()
		utOrder.Remove(oldest)
		delete(utIndex, oldest.Value.(*untrustedEntry).src)
		utEvictions.Inc()
	}
	utEntries.Set(int64(utOrder.Len()))
}

// peekPinned returns the main cache's settled, successful entry for src
// without inserting or compiling anything — the untrusted tier's fast path
// for sources the harness already pinned.
func peekPinned(src string) (*entry, bool) {
	e, ok := cache.Load(src)
	if !ok {
		return nil, false
	}
	ent := e.(*entry)
	if !ent.ready.Load() || ent.err != nil {
		return nil, false
	}
	return ent, true
}

// lookupUntrusted returns src's cached module from the LRU tier, or nil on
// miss. Bumps recency on hit.
func lookupUntrusted(src string) *untrustedEntry {
	utMu.Lock()
	defer utMu.Unlock()
	el, ok := utIndex[src]
	if !ok {
		return nil
	}
	utOrder.MoveToFront(el)
	return el.Value.(*untrustedEntry)
}

// insertUntrusted adds a freshly compiled module (and optionally its flat
// view) to the tier, evicting oldest-first past the cap. A concurrent racer
// that inserted the same source first wins; the loser's module is dropped.
// Unlike the pinned cache there is no singleflight: two concurrent compiles
// of one unseen source waste a compile, not a global lock.
func insertUntrusted(src string, mod *ir.Module, fl *ir.Flat) {
	utMu.Lock()
	defer utMu.Unlock()
	if utCap <= 0 {
		return
	}
	if el, ok := utIndex[src]; ok {
		utOrder.MoveToFront(el)
		ent := el.Value.(*untrustedEntry)
		if ent.flat == nil && fl != nil {
			ent.flat = fl
		}
		return
	}
	utIndex[src] = utOrder.PushFront(&untrustedEntry{src: src, mod: mod, flat: fl})
	evictOverCapLocked()
}

// CompileUntrusted is Compile for wire-originated sources: the caller gets
// a private clone it may mutate, but the backing module lives in the
// bounded LRU tier (or the main cache, if the source is already pinned
// there) instead of growing the pinned cache.
func CompileUntrusted(src, name string) (*ir.Module, error) {
	if !enabled.Load() {
		return minic.CompileSource(src, name)
	}
	if ent, ok := peekPinned(src); ok {
		utHits.Inc()
		return cloneModule(ent.mod, name), nil
	}
	if ent := lookupUntrusted(src); ent != nil {
		utHits.Inc()
		return cloneModule(ent.mod, name), nil
	}
	utMisses.Inc()
	start := time.Now()
	mod, err := minic.CompileSource(src, name)
	compileTimer.Observe(time.Since(start))
	if err != nil {
		// Failed compiles are never retained: a slot per distinct garbage
		// source would let a hostile client churn the whole tier for free.
		return nil, err
	}
	insertUntrusted(src, mod, nil)
	return cloneModule(mod, name), nil
}

// CompileFlatUntrusted is CompileFlat for wire-originated sources, backed
// by the bounded LRU tier. The returned view is shared and read-only.
func CompileFlatUntrusted(src, name string) (*ir.Flat, error) {
	if !enabled.Load() {
		return CompileFlat(src, name) // same build-fresh path
	}
	if _, ok := peekPinned(src); ok {
		// Already pinned by the harness: reuse the main cache's flat view
		// (and its singleflight flatten) rather than duplicating it here.
		return CompileFlat(src, name)
	}
	utMu.Lock()
	if el, ok := utIndex[src]; ok {
		ent := el.Value.(*untrustedEntry)
		utOrder.MoveToFront(el)
		fl, mod := ent.flat, ent.mod
		utMu.Unlock()
		utHits.Inc()
		if fl != nil {
			return fl, nil
		}
		// Module cached but never flattened: build the view outside the
		// lock. Concurrent callers may duplicate the flatten; the insert
		// keeps whichever view landed first, and both are equivalent.
		start := time.Now()
		fl = ir.Flatten(mod)
		flattenTimer.Observe(time.Since(start))
		insertUntrusted(src, mod, fl)
		return fl, nil
	}
	utMu.Unlock()
	utMisses.Inc()
	start := time.Now()
	mod, err := minic.CompileSource(src, name)
	compileTimer.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	fstart := time.Now()
	fl := ir.Flatten(mod)
	flattenTimer.Observe(time.Since(fstart))
	insertUntrusted(src, mod, fl)
	return fl, nil
}

// CompileThawUntrusted is CompileThaw for wire-originated sources: the
// caller gets a private mutable module thawed from a flat view that lives
// in the bounded LRU tier (or the main cache, if the source is pinned
// there). With the thaw path disabled it degrades to CompileUntrusted's
// clone semantics.
func CompileThawUntrusted(src, name string) (*ir.Module, error) {
	if !enabled.Load() || !useThaw.Load() {
		return CompileUntrusted(src, name)
	}
	if ent, ok := peekPinned(src); ok {
		utHits.Inc()
		return thawModule(entFlat(ent), name), nil
	}
	fl, err := CompileFlatUntrusted(src, name)
	if err != nil {
		return nil, err
	}
	return thawModule(fl, name), nil
}

func thawModule(fl *ir.Flat, name string) *ir.Module {
	start := time.Now()
	m := ir.Thaw(fl)
	thawTimer.Observe(time.Since(start))
	thawHits.Inc()
	m.Name = name
	return m
}

func cloneModule(mod *ir.Module, name string) *ir.Module {
	start := time.Now()
	m := mod.Clone()
	cloneTimer.Observe(time.Since(start))
	m.Name = name
	return m
}
