package progcache

import (
	"fmt"
	"sync"
	"testing"
)

// srcFor builds a distinct valid program per index, so each one occupies
// (or competes for) its own untrusted slot.
func srcFor(i int) string {
	return fmt.Sprintf("int main() { int x; x = %d; return x; }", i)
}

func resetUntrustedCap(t *testing.T) {
	t.Helper()
	Reset()
	SetUntrustedCap(DefaultUntrustedCap)
	t.Cleanup(func() {
		Reset()
		SetUntrustedCap(DefaultUntrustedCap)
	})
}

// TestUntrustedTierIsBounded is the regression test for the unbounded
// progcache growth on the serving path: 10 distinct wire sources through a
// 4-slot tier must leave exactly 4 entries and 6 evictions, where the old
// path pinned all 10 forever.
func TestUntrustedTierIsBounded(t *testing.T) {
	resetUntrustedCap(t)
	SetUntrustedCap(4)
	for i := 0; i < 10; i++ {
		if _, err := CompileUntrusted(srcFor(i), "m"); err != nil {
			t.Fatal(err)
		}
	}
	st := Snapshot()
	if st.UntrustedEntries != 4 {
		t.Fatalf("entries = %d, want the cap 4", st.UntrustedEntries)
	}
	if st.UntrustedEvicted != 6 {
		t.Fatalf("evictions = %d, want 6", st.UntrustedEvicted)
	}
	if st.UntrustedMisses != 10 {
		t.Fatalf("misses = %d, want 10", st.UntrustedMisses)
	}
	// The pinned cache must not have grown: that is the whole point.
	if st.Entries != 0 {
		t.Fatalf("untrusted compiles leaked %d entries into the pinned cache", st.Entries)
	}

	// LRU semantics: the most recent 4 survive, hit without compiling.
	for i := 6; i < 10; i++ {
		if _, err := CompileUntrusted(srcFor(i), "m"); err != nil {
			t.Fatal(err)
		}
	}
	if got := Snapshot(); got.UntrustedHits < 4 {
		t.Fatalf("recent entries did not hit: %+v", got)
	}
}

// TestUntrustedFailuresNeverRetained: a hostile stream of non-compiling
// sources must churn zero slots — each failure is rejected without
// occupying an entry (the main cache deliberately caches failures; the
// untrusted tier deliberately must not).
func TestUntrustedFailuresNeverRetained(t *testing.T) {
	resetUntrustedCap(t)
	SetUntrustedCap(4)
	if _, err := CompileUntrusted(srcFor(0), "m"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		bad := fmt.Sprintf("int main( { %d", i)
		if _, err := CompileUntrusted(bad, "m"); err == nil {
			t.Fatal("garbage source compiled")
		}
	}
	st := Snapshot()
	if st.UntrustedEntries != 1 {
		t.Fatalf("entries = %d after garbage storm, want 1", st.UntrustedEntries)
	}
	if st.UntrustedEvicted != 0 {
		t.Fatalf("garbage evicted %d good entries", st.UntrustedEvicted)
	}
	// The surviving good entry still hits.
	if _, err := CompileUntrusted(srcFor(0), "m"); err != nil {
		t.Fatal(err)
	}
	if got := Snapshot(); got.UntrustedHits != 1 {
		t.Fatalf("hits = %d, want 1", got.UntrustedHits)
	}
}

// TestUntrustedDelegatesToPinned: a source the harness already pinned is
// served from the main cache without spending an untrusted slot.
func TestUntrustedDelegatesToPinned(t *testing.T) {
	resetUntrustedCap(t)
	src := srcFor(42)
	if _, err := Compile(src, "pinned"); err != nil {
		t.Fatal(err)
	}
	mod, err := CompileUntrusted(src, "wire")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Name != "wire" {
		t.Fatalf("clone not renamed: %q", mod.Name)
	}
	st := Snapshot()
	if st.UntrustedHits != 1 || st.UntrustedMisses != 0 {
		t.Fatalf("pinned source: hits=%d misses=%d, want 1/0", st.UntrustedHits, st.UntrustedMisses)
	}
	if st.UntrustedEntries != 0 {
		t.Fatalf("pinned source consumed %d untrusted slots", st.UntrustedEntries)
	}
}

// TestUntrustedCapZeroBypasses: cap 0 disables retention — compiles still
// succeed, nothing is kept.
func TestUntrustedCapZeroBypasses(t *testing.T) {
	resetUntrustedCap(t)
	SetUntrustedCap(0)
	for i := 0; i < 3; i++ {
		if _, err := CompileUntrusted(srcFor(i), "m"); err != nil {
			t.Fatal(err)
		}
	}
	if st := Snapshot(); st.UntrustedEntries != 0 {
		t.Fatalf("cap 0 retained %d entries", st.UntrustedEntries)
	}
	// And shrinking the cap under live entries evicts immediately.
	SetUntrustedCap(8)
	for i := 0; i < 8; i++ {
		if _, err := CompileUntrusted(srcFor(i), "m"); err != nil {
			t.Fatal(err)
		}
	}
	SetUntrustedCap(2)
	if st := Snapshot(); st.UntrustedEntries != 2 {
		t.Fatalf("shrink left %d entries, want 2", st.UntrustedEntries)
	}
}

// TestUntrustedFlatSharesModule: CompileFlatUntrusted reuses the module a
// plain CompileUntrusted cached and attaches the flat view lazily; a second
// flat call returns the same shared view without another flatten.
func TestUntrustedFlatSharesModule(t *testing.T) {
	resetUntrustedCap(t)
	src := srcFor(7)
	if _, err := CompileUntrusted(src, "m"); err != nil {
		t.Fatal(err)
	}
	f1, err := CompileFlatUntrusted(src, "m")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := CompileFlatUntrusted(src, "m")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("flat view rebuilt instead of shared")
	}
	if st := Snapshot(); st.UntrustedEntries != 1 {
		t.Fatalf("flat path grew the tier to %d entries", st.UntrustedEntries)
	}
}

// TestUntrustedConcurrentChurn is the -race gate for the tier: concurrent
// hits, misses and evictions over a tiny cap, plus a cap change mid-storm.
func TestUntrustedConcurrentChurn(t *testing.T) {
	resetUntrustedCap(t)
	SetUntrustedCap(4)
	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src := srcFor((w + i) % 10)
				var err error
				if i%2 == 0 {
					_, err = CompileUntrusted(src, "m")
				} else {
					_, err = CompileFlatUntrusted(src, "m")
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i == perWorker/2 && w == 0 {
					SetUntrustedCap(2)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := Snapshot(); st.UntrustedEntries > 2 {
		t.Fatalf("entries = %d, want <= shrunk cap 2", st.UntrustedEntries)
	}
}

// TestUntrustedThawMatchesClone pins CompileThawUntrusted against
// CompileUntrusted on both tiers: a fresh wire source (LRU-backed) and a
// harness-pinned one (main-cache-backed) must thaw to modules that print
// identically to the clone path and stay private.
func TestUntrustedThawMatchesClone(t *testing.T) {
	resetUntrustedCap(t)

	// LRU-backed: first call compiles+flattens into the bounded tier.
	cl, err := CompileUntrusted(srcFor(1), "m")
	if err != nil {
		t.Fatal(err)
	}
	th, err := CompileThawUntrusted(srcFor(1), "m")
	if err != nil {
		t.Fatal(err)
	}
	if th == cl || th.String() != cl.String() {
		t.Fatal("untrusted thaw diverged from untrusted clone")
	}
	if st := Snapshot(); st.Entries != 0 {
		t.Fatalf("untrusted thaw leaked %d entries into the pinned cache", st.Entries)
	}

	// Pinned-backed: the main cache's flat view serves the thaw.
	if _, err := Compile(srcFor(2), "m"); err != nil {
		t.Fatal(err)
	}
	th2, err := CompileThawUntrusted(srcFor(2), "m")
	if err != nil {
		t.Fatal(err)
	}
	shared, err := CompileShared(srcFor(2), "m")
	if err != nil {
		t.Fatal(err)
	}
	before := shared.String()
	if th2.String() != before {
		t.Fatal("pinned-backed thaw diverged from the master")
	}
	th2.Functions[0].Blocks = nil
	if shared.String() != before {
		t.Fatal("mutating an untrusted thaw changed the pinned master")
	}
	if st := Snapshot(); st.ThawHits != 2 {
		t.Fatalf("want 2 thaw hits, got %+v", st)
	}

	// Disabled thaw path degrades to clone semantics.
	SetThaw(false)
	defer SetThaw(true)
	m, err := CompileThawUntrusted(srcFor(1), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
