// Package progcache is a process-wide compile-once cache for MiniC
// sources. Every experiment in the harness replays the same dataset
// sources across rounds, games, embeddings and models; the front end is
// deterministic, so the O0 compile of a given source is an immutable
// artifact that can be compiled once and reused everywhere (the same move
// as a compiler's module cache). Consumers that go on to mutate the module
// with passes or obfuscations receive a deep clone of the cached master;
// read-only consumers can share the master directly.
//
// Alongside each master module the cache lazily materializes its
// struct-of-arrays view (ir.Flatten), built at most once per entry and
// shared by every CompileFlat caller: the embedding pipeline, distance
// analyses, antivirus scoring and the bytecode compiler all walk the same
// immutable flat tables with zero per-call cloning or indexing.
package progcache

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
)

// entry is one cache slot. The sync.Onces serialize the first compile of a
// source and the first flatten of its master (singleflight) without
// holding any global lock. The flat view is invalidated with the entry —
// it lives and dies with the master module it indexes.
type entry struct {
	once sync.Once
	mod  *ir.Module
	err  error
	// ready flips once the compile in once.Do has finished, so the
	// untrusted tier can peek at settled entries without touching the Once
	// (a no-op Do would race the storing goroutine's real Do and could mark
	// the entry done before it ever compiled).
	ready atomic.Bool

	flatOnce sync.Once
	flat     *ir.Flat
}

// The cache counters live in the process-wide obs registry ("progcache.*"),
// so run manifests and the -debug-addr expvar endpoint see them without
// this package knowing about either; Snapshot keeps serving the historical
// struct view over the same metrics.
var (
	cache   sync.Map // source string -> *entry
	enabled atomic.Bool
	useThaw atomic.Bool

	hits         = obs.GetCounter("progcache.hits")
	misses       = obs.GetCounter("progcache.misses")
	entries      = obs.GetGauge("progcache.entries")
	compileTimer = obs.GetTimer("progcache.compile")
	cloneTimer   = obs.GetTimer("progcache.clone")
	flatHits     = obs.GetCounter("progcache.flat.hits")
	flatMisses   = obs.GetCounter("progcache.flat.misses")
	flattenTimer = obs.GetTimer("progcache.flatten")
	thawHits     = obs.GetCounter("progcache.thaw.hits")
	thawTimer    = obs.GetTimer("progcache.thaw")
)

func init() {
	enabled.Store(true)
	useThaw.Store(true)
}

// SetEnabled toggles the cache globally (tests use this to compare cached
// against uncached runs). Disabling does not drop existing entries; use
// Reset for that.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the cache is active.
func Enabled() bool { return enabled.Load() }

// SetThaw toggles the thaw fast path behind CompileThaw. With it off, every
// CompileThaw caller falls back to the historical clone path — the
// clone-vs-thaw determinism suites flip this to prove the two backends
// produce bit-identical runs.
func SetThaw(on bool) { useThaw.Store(on) }

// ThawEnabled reports whether CompileThaw uses the thaw path.
func ThawEnabled() bool { return useThaw.Load() }

// Reset drops every cached module (and with it every cached flat view),
// empties the untrusted tier and zeroes the counters.
func Reset() {
	cache.Range(func(k, _ any) bool { cache.Delete(k); return true })
	entries.Set(0)
	ResetUntrusted()
	ResetStats()
}

// ResetStats zeroes the hit/miss/timing counters without dropping entries.
func ResetStats() {
	hits.Reset()
	misses.Reset()
	compileTimer.Reset()
	cloneTimer.Reset()
	flatHits.Reset()
	flatMisses.Reset()
	flattenTimer.Reset()
	thawHits.Reset()
	thawTimer.Reset()
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Entries int64
	// FlatHits/FlatMisses count CompileFlat calls served from an existing
	// flat view vs. ones that built it.
	FlatHits, FlatMisses int64
	// ThawHits counts mutable copies served by rebuilding from the cached
	// flat view instead of deep-cloning the master.
	ThawHits int64
	// The Untrusted* fields mirror the bounded LRU tier that serves
	// wire-originated compiles (see untrusted.go).
	UntrustedHits, UntrustedMisses     int64
	UntrustedEntries, UntrustedEvicted int64
	// CompileTime is the total front-end time spent on cache misses;
	// CloneTime is the total time spent deep-cloning cached modules for
	// mutating consumers; FlattenTime is the total time spent building
	// struct-of-arrays views on flat misses; ThawTime is the total time
	// spent rebuilding mutable modules from cached flat views.
	CompileTime time.Duration
	CloneTime   time.Duration
	FlattenTime time.Duration
	ThawTime    time.Duration
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	n := int64(0)
	cache.Range(func(_, _ any) bool { n++; return true })
	return Stats{
		Hits:             hits.Value(),
		Misses:           misses.Value(),
		Entries:          n,
		FlatHits:         flatHits.Value(),
		FlatMisses:       flatMisses.Value(),
		ThawHits:         thawHits.Value(),
		UntrustedHits:    utHits.Value(),
		UntrustedMisses:  utMisses.Value(),
		UntrustedEntries: utEntries.Value(),
		UntrustedEvicted: utEvictions.Value(),
		CompileTime:      compileTimer.Total(),
		CloneTime:        cloneTimer.Total(),
		FlattenTime:      flattenTimer.Total(),
		ThawTime:         thawTimer.Total(),
	}
}

// lookupEntry returns the cache slot for src with its master compiled. The
// cache is keyed by the source text alone — the module name only labels
// printed IR, so one master serves callers that name their modules
// differently.
func lookupEntry(src, name string) (*entry, error) {
	e, loaded := cache.Load(src)
	if !loaded {
		e, loaded = cache.LoadOrStore(src, &entry{})
		if !loaded {
			entries.Add(1)
		}
	}
	ent := e.(*entry)
	ent.once.Do(func() {
		misses.Inc()
		start := time.Now()
		ent.mod, ent.err = minic.CompileSource(src, name)
		compileTimer.Observe(time.Since(start))
		ent.ready.Store(true)
	})
	if loaded && ent.err == nil {
		hits.Inc()
	}
	return ent, ent.err
}

// Compile returns a freshly cloned module for src that the caller owns and
// may mutate freely. The underlying compile happens at most once per
// distinct source for the life of the process.
func Compile(src, name string) (*ir.Module, error) {
	if !enabled.Load() {
		return minic.CompileSource(src, name)
	}
	ent, err := lookupEntry(src, name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	m := ent.mod.Clone()
	cloneTimer.Observe(time.Since(start))
	m.Name = name
	return m, nil
}

// CompileShared returns the cached master module for src. The caller MUST
// NOT mutate it (no passes, no obfuscations) — it is shared by every other
// CompileShared caller and is the template Compile clones from. Use it for
// read-only consumers: embeddings, n-gram scans, compile checks.
func CompileShared(src, name string) (*ir.Module, error) {
	if !enabled.Load() {
		return minic.CompileSource(src, name)
	}
	ent, err := lookupEntry(src, name)
	if err != nil {
		return nil, err
	}
	return ent.mod, nil
}

// CompileFlat returns the cached struct-of-arrays view of src's master
// module, flattening it on first use. Like the master itself the view is
// shared and strictly read-only; unlike Compile there is nothing to clone —
// any number of embed/featurize/scan/compile consumers stream the same
// tables concurrently. With the cache disabled the module and its view are
// built fresh on every call.
func CompileFlat(src, name string) (*ir.Flat, error) {
	if !enabled.Load() {
		m, err := minic.CompileSource(src, name)
		if err != nil {
			return nil, err
		}
		flatMisses.Inc()
		start := time.Now()
		fl := ir.Flatten(m)
		flattenTimer.Observe(time.Since(start))
		return fl, nil
	}
	ent, err := lookupEntry(src, name)
	if err != nil {
		return nil, err
	}
	return entFlat(ent), nil
}

// entFlat returns the entry's flat view, flattening the master at most once
// (singleflight via flatOnce). The entry's compile must have succeeded.
func entFlat(ent *entry) *ir.Flat {
	built := false
	ent.flatOnce.Do(func() {
		built = true
		flatMisses.Inc()
		start := time.Now()
		ent.flat = ir.Flatten(ent.mod)
		flattenTimer.Observe(time.Since(start))
	})
	if !built {
		flatHits.Inc()
	}
	return ent.flat
}

// CompileThaw returns a freshly built module for src that the caller owns
// and may mutate freely — the same contract as Compile, served the cheap
// way: instead of deep-cloning the cached master it thaws the cached flat
// view (ir.Thaw), which allocates the whole module out of a handful of
// arenas. Transform pipelines, fuzz campaigns and the coevo generation loop
// draw their mutable copies here; the clone-vs-thaw difftest campaign pins
// the two paths bit-for-bit equivalent. SetThaw(false) reverts every caller
// to the clone path.
func CompileThaw(src, name string) (*ir.Module, error) {
	if !enabled.Load() || !useThaw.Load() {
		return Compile(src, name)
	}
	ent, err := lookupEntry(src, name)
	if err != nil {
		return nil, err
	}
	return thawModule(entFlat(ent), name), nil
}
