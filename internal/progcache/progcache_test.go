package progcache

import (
	"sync"
	"testing"
)

const testSrc = `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) s += i * i;
	return s;
}`

func TestCompileHitsAndMisses(t *testing.T) {
	Reset()
	m1, err := Compile(testSrc, "a")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Compile(testSrc, "b")
	if err != nil {
		t.Fatal(err)
	}
	st := Snapshot()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("want 1 miss + 1 hit, got %+v", st)
	}
	if st.Entries != 1 {
		t.Fatalf("want 1 entry, got %d", st.Entries)
	}
	if m1 == m2 {
		t.Fatal("Compile returned the same module twice; clones must be private")
	}
	if m1.Name != "a" || m2.Name != "b" {
		t.Fatalf("clone names not applied: %q / %q", m1.Name, m2.Name)
	}
}

func TestCloneIsolation(t *testing.T) {
	Reset()
	shared, err := CompileShared(testSrc, "s")
	if err != nil {
		t.Fatal(err)
	}
	before := shared.String()
	clone, err := Compile(testSrc, "c")
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize the clone; the shared master must not notice.
	clone.Functions[0].Blocks = nil
	clone.Name = "wrecked"
	if got := shared.String(); got != before {
		t.Fatal("mutating a Compile clone changed the shared master")
	}
}

func TestErrorCachedOnce(t *testing.T) {
	Reset()
	bad := "int main() { return x_undefined; }"
	if _, err := Compile(bad, "bad"); err == nil {
		t.Fatal("expected a compile error")
	}
	if _, err := Compile(bad, "bad"); err == nil {
		t.Fatal("expected the cached compile error")
	}
	st := Snapshot()
	if st.Misses != 1 {
		t.Fatalf("failed compile should be attempted once, got %d misses", st.Misses)
	}
}

func TestDisabledBypassesCache(t *testing.T) {
	Reset()
	SetEnabled(false)
	defer SetEnabled(true)
	if _, err := Compile(testSrc, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileShared(testSrc, "y"); err != nil {
		t.Fatal(err)
	}
	st := Snapshot()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache should stay empty, got %+v", st)
	}
}

func TestCompileThawMatchesClone(t *testing.T) {
	Reset()
	cl, err := Compile(testSrc, "m")
	if err != nil {
		t.Fatal(err)
	}
	th, err := CompileThaw(testSrc, "m")
	if err != nil {
		t.Fatal(err)
	}
	if th == cl {
		t.Fatal("CompileThaw returned a shared module; copies must be private")
	}
	if th.String() != cl.String() {
		t.Fatalf("thawed copy prints differently from clone:\n--- clone ---\n%s\n--- thaw ---\n%s", cl, th)
	}
	if err := th.Verify(); err != nil {
		t.Fatalf("thawed copy fails verification: %v", err)
	}
	st := Snapshot()
	if st.ThawHits != 1 {
		t.Fatalf("want 1 thaw hit, got %+v", st)
	}
	if st.FlatMisses != 1 {
		t.Fatalf("thaw should have built the flat view once, got %+v", st)
	}
	if st.ThawTime <= 0 {
		t.Fatal("thaw timer did not advance")
	}
}

func TestCompileThawIsolation(t *testing.T) {
	Reset()
	shared, err := CompileShared(testSrc, "s")
	if err != nil {
		t.Fatal(err)
	}
	before := shared.String()
	th, err := CompileThaw(testSrc, "c")
	if err != nil {
		t.Fatal(err)
	}
	th.Functions[0].Blocks = nil
	th.Name = "wrecked"
	if got := shared.String(); got != before {
		t.Fatal("mutating a CompileThaw copy changed the shared master")
	}
	// The cached flat view must be reusable after the vandalism too.
	th2, err := CompileThaw(testSrc, "s")
	if err != nil {
		t.Fatal(err)
	}
	if got := th2.String(); got != before {
		t.Fatal("mutating a CompileThaw copy corrupted the cached flat view")
	}
}

func TestSetThawFallsBackToClone(t *testing.T) {
	Reset()
	SetThaw(false)
	defer SetThaw(true)
	if ThawEnabled() {
		t.Fatal("SetThaw(false) not observed")
	}
	m, err := CompileThaw(testSrc, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	st := Snapshot()
	if st.ThawHits != 0 {
		t.Fatalf("thaw disabled but counted %d thaw hits", st.ThawHits)
	}
	if st.CloneTime <= 0 {
		t.Fatal("clone fallback did not run")
	}
}

func TestConcurrentSingleflight(t *testing.T) {
	Reset()
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := Compile(testSrc, "p"); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := Snapshot(); st.Misses != 1 {
		t.Fatalf("concurrent compiles of one source should miss once, got %d", st.Misses)
	}
}
