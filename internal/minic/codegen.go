package minic

import (
	"fmt"

	"repro/internal/ir"
)

// Compile lowers a parsed MiniC file to an IR module. The generated code is
// deliberately naive — every variable lives in an alloca, every access is a
// load/store — matching what clang -O0 produces; internal/passes provides
// mem2reg and friends to clean it up.
func Compile(file *File, name string) (*ir.Module, error) {
	c := &compiler{
		mod:     ir.NewModule(name),
		fns:     make(map[string]*ir.Function),
		globals: make(map[string]*globalInfo),
		strLits: make(map[string]*ir.Global),
		structs: make(map[string]*structInfo),
		byType:  make(map[*ir.Type]*structInfo),
	}
	if err := c.declare(file); err != nil {
		return nil, err
	}
	for _, d := range file.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if err := c.compileFunc(fd); err != nil {
			return nil, fmt.Errorf("function %s: %w", fd.Name, err)
		}
	}
	for _, f := range c.mod.Functions {
		if f.IsDecl() {
			return nil, fmt.Errorf("function %s declared but never defined", f.Name)
		}
	}
	if err := c.mod.Verify(); err != nil {
		return nil, fmt.Errorf("internal error: generated invalid IR: %w", err)
	}
	return c.mod, nil
}

// CompileSource parses and compiles MiniC source text.
func CompileSource(src, name string) (*ir.Module, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f, name)
}

type globalInfo struct {
	g    *ir.Global
	spec TypeSpec
}

type varInfo struct {
	ptr  ir.Value // pointer to the storage
	spec TypeSpec
	ty   *ir.Type // pointee type
}

type compiler struct {
	mod     *ir.Module
	fns     map[string]*ir.Function
	fnDecls map[string]*FuncDecl
	globals map[string]*globalInfo
	strLits map[string]*ir.Global
	structs map[string]*structInfo
	byType  map[*ir.Type]*structInfo
	nstr    int

	// per-function state
	fn     *ir.Function
	fd     *FuncDecl
	bd     *ir.Builder
	entry  *ir.Block
	scopes []map[string]varInfo
	breaks []*ir.Block
	conts  []*ir.Block
	nblk   int
}

// structInfo records a defined struct type: the (interned, identity-
// comparable) IR type plus the field name-to-index mapping.
type structInfo struct {
	name     string
	ty       *ir.Type
	fieldIdx map[string]int
	fields   []TypeSpec
}

// irType lowers a TypeSpec to an IR type; struct tags resolve through the
// compiler's registry.
func (c *compiler) irType(t TypeSpec) (*ir.Type, error) {
	var base *ir.Type
	switch t.Base {
	case TInt:
		base = ir.I64
	case TFloat:
		base = ir.F64
	case TChar:
		base = ir.I8
	case TStruct:
		si := c.structs[t.Struct]
		if si == nil {
			return nil, fmt.Errorf("unknown struct %q", t.Struct)
		}
		base = si.ty
	default:
		base = ir.Void
	}
	for i := 0; i < t.Ptr; i++ {
		base = ir.PtrTo(base)
	}
	for i := len(t.Dims) - 1; i >= 0; i-- {
		base = ir.ArrayOf(base, t.Dims[i])
	}
	return base, nil
}

// paramIRType lowers a parameter spec; arrays decay to pointers. Structs
// are passed by pointer only.
func (c *compiler) paramIRType(p *ParamDecl) (*ir.Type, error) {
	t, err := c.irType(p.Type)
	if err != nil {
		return nil, err
	}
	if p.Type.Base == TStruct && p.Type.Ptr == 0 && !p.Array {
		return nil, fmt.Errorf("parameter %s: structs are passed by pointer in MiniC", p.Name)
	}
	if p.Array {
		return ir.PtrTo(t), nil
	}
	return t, nil
}

// defineStruct registers a struct declaration, building its interned IR
// type. Self-references must be pointers.
func (c *compiler) defineStruct(sd *StructDecl) error {
	if c.structs[sd.Name] != nil {
		return fmt.Errorf("duplicate struct %s", sd.Name)
	}
	// Register a shell first so pointer fields may refer to the struct
	// itself (linked lists, trees).
	si := &structInfo{name: sd.Name, ty: ir.StructOf(), fieldIdx: make(map[string]int)}
	c.structs[sd.Name] = si
	c.byType[si.ty] = si
	for i, f := range sd.Fields {
		if _, dup := si.fieldIdx[f.Name]; dup {
			return fmt.Errorf("struct %s: duplicate field %s", sd.Name, f.Name)
		}
		if f.Type.Base == TStruct && f.Type.Struct == sd.Name && f.Type.Ptr == 0 {
			return fmt.Errorf("struct %s: recursive field %s must be a pointer", sd.Name, f.Name)
		}
		ft, err := c.irType(f.Type)
		if err != nil {
			return fmt.Errorf("struct %s: field %s: %w", sd.Name, f.Name, err)
		}
		if ft.IsVoid() {
			return fmt.Errorf("struct %s: field %s has void type", sd.Name, f.Name)
		}
		si.ty.Fields = append(si.ty.Fields, ft)
		si.fieldIdx[f.Name] = i
		si.fields = append(si.fields, f.Type)
	}
	if len(si.ty.Fields) == 0 {
		return fmt.Errorf("struct %s has no fields", sd.Name)
	}
	return nil
}

func (c *compiler) declare(file *File) error {
	c.fnDecls = make(map[string]*FuncDecl)
	// Struct definitions first: every later type may reference them.
	for _, d := range file.Decls {
		if sd, ok := d.(*StructDecl); ok {
			if err := c.defineStruct(sd); err != nil {
				return err
			}
		}
	}
	for _, d := range file.Decls {
		switch x := d.(type) {
		case *FuncDecl:
			if c.fns[x.Name] != nil {
				// A prototype followed by its definition is fine; two
				// bodies (or two prototypes) are duplicates.
				if prev := c.fnDecls[x.Name]; prev.Body == nil && x.Body != nil {
					c.fnDecls[x.Name] = x
					continue
				}
				return fmt.Errorf("duplicate function %s", x.Name)
			}
			names := make([]string, len(x.Params))
			types := make([]*ir.Type, len(x.Params))
			for i, p := range x.Params {
				names[i] = p.Name
				pt, err := c.paramIRType(p)
				if err != nil {
					return fmt.Errorf("function %s: %w", x.Name, err)
				}
				types[i] = pt
			}
			if x.Ret.Base == TStruct && x.Ret.Ptr == 0 {
				return fmt.Errorf("function %s: structs are returned by pointer in MiniC", x.Name)
			}
			ret, err := c.irType(x.Ret)
			if err != nil {
				return fmt.Errorf("function %s: %w", x.Name, err)
			}
			f := ir.NewFunction(x.Name, ret, names, types)
			c.mod.Add(f)
			c.fns[x.Name] = f
			c.fnDecls[x.Name] = x
		case *VarDecl:
			if err := c.declareGlobal(x); err != nil {
				return err
			}
		}
	}
	if c.fns["main"] == nil {
		return fmt.Errorf("program has no main function")
	}
	return nil
}

func (c *compiler) declareGlobal(v *VarDecl) error {
	if c.globals[v.Name] != nil {
		return fmt.Errorf("duplicate global %s", v.Name)
	}
	elem, err := c.irType(v.Type)
	if err != nil {
		return fmt.Errorf("global %s: %w", v.Name, err)
	}
	if v.Type.Base == TStruct && v.Type.Ptr == 0 && (v.Init != nil || v.Inits != nil) {
		return fmt.Errorf("global %s: struct globals are zero-initialized only", v.Name)
	}
	g := &ir.Global{Name: v.Name, Elem: elem, Const: v.Const}
	isFloat := v.Type.Base == TFloat && v.Type.Ptr == 0
	constVal := func(e Expr) (int64, float64, error) {
		iv, fv, isF, err := constEval(e)
		if err != nil {
			return 0, 0, err
		}
		if isF {
			return int64(fv), fv, nil
		}
		return iv, float64(iv), nil
	}
	switch {
	case v.Init != nil:
		iv, fv, err := constVal(v.Init)
		if err != nil {
			return fmt.Errorf("global %s: %w", v.Name, err)
		}
		if isFloat {
			g.InitF = []float64{fv}
		} else {
			g.InitI = []int64{iv}
		}
	case v.Inits != nil:
		for _, e := range v.Inits {
			iv, fv, err := constVal(e)
			if err != nil {
				return fmt.Errorf("global %s: %w", v.Name, err)
			}
			if isFloat {
				g.InitF = append(g.InitF, fv)
			} else {
				g.InitI = append(g.InitI, iv)
			}
		}
	}
	c.mod.AddGlobal(g)
	c.globals[v.Name] = &globalInfo{g: g, spec: v.Type}
	return nil
}

// constEval evaluates a constant expression for global initializers.
func constEval(e Expr) (int64, float64, bool, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, 0, false, nil
	case *FloatLit:
		return 0, x.Val, true, nil
	case *CharLit:
		return int64(x.Val), 0, false, nil
	case *ParenExpr:
		return constEval(x.X)
	case *UnaryExpr:
		iv, fv, isF, err := constEval(x.X)
		if err != nil {
			return 0, 0, false, err
		}
		switch x.Op {
		case "-":
			return -iv, -fv, isF, nil
		case "~":
			return ^iv, 0, false, nil
		}
	case *BinaryExpr:
		ai, af, aF, err := constEval(x.X)
		if err != nil {
			return 0, 0, false, err
		}
		bi, bf, bF, err := constEval(x.Y)
		if err != nil {
			return 0, 0, false, err
		}
		if aF || bF {
			if !aF {
				af = float64(ai)
			}
			if !bF {
				bf = float64(bi)
			}
			switch x.Op {
			case "+":
				return 0, af + bf, true, nil
			case "-":
				return 0, af - bf, true, nil
			case "*":
				return 0, af * bf, true, nil
			case "/":
				return 0, af / bf, true, nil
			}
			return 0, 0, false, fmt.Errorf("non-constant float operator %q", x.Op)
		}
		switch x.Op {
		case "+":
			return ai + bi, 0, false, nil
		case "-":
			return ai - bi, 0, false, nil
		case "*":
			return ai * bi, 0, false, nil
		case "/":
			if bi == 0 {
				return 0, 0, false, fmt.Errorf("division by zero in constant")
			}
			return ai / bi, 0, false, nil
		case "%":
			if bi == 0 {
				return 0, 0, false, fmt.Errorf("division by zero in constant")
			}
			return ai % bi, 0, false, nil
		case "<<":
			// Mask the count like the interpreter and the IR folder do
			// (shl/ashr use count & 63): Go would yield 0 for counts >= 64
			// or huge uint conversions of negative counts, silently
			// diverging from the runtime result of the same expression.
			return ai << (uint64(bi) & 63), 0, false, nil
		case ">>":
			return ai >> (uint64(bi) & 63), 0, false, nil
		case "&":
			return ai & bi, 0, false, nil
		case "|":
			return ai | bi, 0, false, nil
		case "^":
			return ai ^ bi, 0, false, nil
		}
	}
	return 0, 0, false, fmt.Errorf("expression is not constant")
}

func (c *compiler) compileFunc(fd *FuncDecl) error {
	c.fn = c.fns[fd.Name]
	c.fd = fd
	c.scopes = []map[string]varInfo{make(map[string]varInfo)}
	c.breaks, c.conts = nil, nil
	c.nblk = 0
	c.entry = c.fn.NewBlock("entry")
	c.bd = ir.NewBuilder(c.entry)

	// Spill parameters to allocas, as clang -O0 does; mem2reg re-promotes.
	for i, p := range fd.Params {
		ty, err := c.paramIRType(p)
		if err != nil {
			return err
		}
		slot := c.bd.Alloca(ty)
		c.bd.Store(c.fn.Params[i], slot)
		spec := p.Type
		if p.Array {
			spec.Ptr++
			spec.Dims = nil
		}
		c.scopes[0][p.Name] = varInfo{ptr: slot, spec: spec, ty: ty}
	}
	if err := c.genBlock(fd.Body); err != nil {
		return err
	}
	// Terminate any open block with an implicit return.
	if c.bd.Cur.Term() == nil {
		ret := c.fn.RetType()
		switch {
		case ret.IsVoid():
			c.bd.Ret(nil)
		case ret.IsFloat():
			c.bd.Ret(ir.ConstFloat(0))
		case ret.IsPtr():
			c.bd.Ret(ir.ConstNull(ret))
		default:
			c.bd.Ret(ir.ConstInt(ret, 0))
		}
	}
	// Close stray unreachable continuation blocks.
	for _, b := range c.fn.Blocks {
		if b.Term() == nil {
			ir.NewBuilder(b).Unreachable()
		}
	}
	c.fn.RemoveUnreachable()
	return nil
}

func (c *compiler) newBlock(hint string) *ir.Block {
	c.nblk++
	return c.fn.NewBlock(fmt.Sprintf("%s%d", hint, c.nblk))
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, make(map[string]varInfo)) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) lookup(name string) (varInfo, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v, true
		}
	}
	if g, ok := c.globals[name]; ok {
		return varInfo{ptr: g.g, spec: g.spec, ty: g.g.Elem}, true
	}
	return varInfo{}, false
}

// --- statements ---

func (c *compiler) genBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.List {
		if err := c.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// startDeadBlock begins a fresh unreachable block so statements after a
// terminator still generate valid IR; RemoveUnreachable deletes them.
func (c *compiler) ensureOpen() {
	if c.bd.Cur.Term() != nil {
		c.bd.SetBlock(c.newBlock("dead"))
	}
}

func (c *compiler) genStmt(s Stmt) error {
	c.ensureOpen()
	switch x := s.(type) {
	case *BlockStmt:
		return c.genBlock(x)
	case *EmptyStmt:
		return nil
	case *DeclStmt:
		for _, v := range x.Vars {
			if err := c.genVarDecl(v); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		_, err := c.genExpr(x.X)
		return err
	case *ReturnStmt:
		return c.genReturn(x)
	case *IfStmt:
		return c.genIf(x)
	case *WhileStmt:
		return c.genWhile(x)
	case *DoWhileStmt:
		return c.genDoWhile(x)
	case *ForStmt:
		return c.genFor(x)
	case *SwitchStmt:
		return c.genSwitch(x)
	case *BreakStmt:
		if len(c.breaks) == 0 {
			return fmt.Errorf("break outside loop or switch")
		}
		c.bd.Br(c.breaks[len(c.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(c.conts) == 0 {
			return fmt.Errorf("continue outside loop")
		}
		c.bd.Br(c.conts[len(c.conts)-1])
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (c *compiler) genVarDecl(v *VarDecl) error {
	ty, err := c.irType(v.Type)
	if err != nil {
		return err
	}
	if ty.IsVoid() {
		return fmt.Errorf("variable %s has void type", v.Name)
	}
	if ty.IsStruct() && (v.Init != nil || v.Inits != nil) {
		return fmt.Errorf("variable %s: struct initializers are not supported; assign fields", v.Name)
	}
	// Allocas go in the entry block so mem2reg can promote them.
	slot := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PtrTo(ty), AllocaTy: ty}
	c.entry.InsertBefore(0, slot)
	c.scopes[len(c.scopes)-1][v.Name] = varInfo{ptr: slot, spec: v.Type, ty: ty}
	switch {
	case v.Init != nil:
		val, err := c.genExpr(v.Init)
		if err != nil {
			return err
		}
		val, err = c.convert(val, ty)
		if err != nil {
			return fmt.Errorf("initializing %s: %w", v.Name, err)
		}
		c.bd.Store(val, slot)
	case v.Inits != nil:
		if !ty.IsArray() {
			return fmt.Errorf("brace initializer on non-array %s", v.Name)
		}
		// Flat row-major initializer, C style: works for multi-dimensional
		// arrays too ({1,0,0, 0,2,0, ...}).
		scalar := ty.Elem
		for scalar.IsArray() {
			scalar = scalar.Elem
		}
		for i, e := range v.Inits {
			val, err := c.genExpr(e)
			if err != nil {
				return err
			}
			val, err = c.convert(val, scalar)
			if err != nil {
				return fmt.Errorf("initializing %s[%d]: %w", v.Name, i, err)
			}
			// Build nested constant indices for element i.
			idxs := []ir.Value{ir.ConstInt(ir.I64, 0)}
			rem := int64(i)
			strides := make([]int64, len(v.Type.Dims))
			s := int64(1)
			for k := len(v.Type.Dims) - 1; k >= 0; k-- {
				strides[k] = s
				s *= int64(v.Type.Dims[k])
			}
			for k := range v.Type.Dims {
				idxs = append(idxs, ir.ConstInt(ir.I64, rem/strides[k]))
				rem %= strides[k]
			}
			p := c.bd.GEP(slot, idxs...)
			c.bd.Store(val, p)
		}
	}
	return nil
}

func (c *compiler) genReturn(r *ReturnStmt) error {
	ret := c.fn.RetType()
	if r.Val == nil {
		if !ret.IsVoid() {
			return fmt.Errorf("missing return value")
		}
		c.bd.Ret(nil)
		return nil
	}
	v, err := c.genExpr(r.Val)
	if err != nil {
		return err
	}
	v, err = c.convert(v, ret)
	if err != nil {
		return fmt.Errorf("return value: %w", err)
	}
	c.bd.Ret(v)
	return nil
}

func (c *compiler) genIf(s *IfStmt) error {
	cond, err := c.genCond(s.Cond)
	if err != nil {
		return err
	}
	then := c.newBlock("if.then")
	exit := c.newBlock("if.end")
	els := exit
	if s.Else != nil {
		els = c.newBlock("if.else")
	}
	c.bd.CondBr(cond, then, els)

	c.bd.SetBlock(then)
	if err := c.genStmt(s.Then); err != nil {
		return err
	}
	if c.bd.Cur.Term() == nil {
		c.bd.Br(exit)
	}
	if s.Else != nil {
		c.bd.SetBlock(els)
		if err := c.genStmt(s.Else); err != nil {
			return err
		}
		if c.bd.Cur.Term() == nil {
			c.bd.Br(exit)
		}
	}
	c.bd.SetBlock(exit)
	return nil
}

func (c *compiler) genWhile(s *WhileStmt) error {
	head := c.newBlock("while.cond")
	body := c.newBlock("while.body")
	exit := c.newBlock("while.end")
	c.bd.Br(head)

	c.bd.SetBlock(head)
	cond, err := c.genCond(s.Cond)
	if err != nil {
		return err
	}
	c.bd.CondBr(cond, body, exit)

	c.breaks = append(c.breaks, exit)
	c.conts = append(c.conts, head)
	c.bd.SetBlock(body)
	if err := c.genStmt(s.Body); err != nil {
		return err
	}
	if c.bd.Cur.Term() == nil {
		c.bd.Br(head)
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.conts = c.conts[:len(c.conts)-1]
	c.bd.SetBlock(exit)
	return nil
}

func (c *compiler) genDoWhile(s *DoWhileStmt) error {
	body := c.newBlock("do.body")
	head := c.newBlock("do.cond")
	exit := c.newBlock("do.end")
	c.bd.Br(body)

	c.breaks = append(c.breaks, exit)
	c.conts = append(c.conts, head)
	c.bd.SetBlock(body)
	if err := c.genStmt(s.Body); err != nil {
		return err
	}
	if c.bd.Cur.Term() == nil {
		c.bd.Br(head)
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.conts = c.conts[:len(c.conts)-1]

	c.bd.SetBlock(head)
	cond, err := c.genCond(s.Cond)
	if err != nil {
		return err
	}
	c.bd.CondBr(cond, body, exit)
	c.bd.SetBlock(exit)
	return nil
}

func (c *compiler) genFor(s *ForStmt) error {
	c.pushScope()
	defer c.popScope()
	if s.Init != nil {
		if err := c.genStmt(s.Init); err != nil {
			return err
		}
	}
	head := c.newBlock("for.cond")
	body := c.newBlock("for.body")
	post := c.newBlock("for.inc")
	exit := c.newBlock("for.end")
	c.bd.Br(head)

	c.bd.SetBlock(head)
	if s.Cond != nil {
		cond, err := c.genCond(s.Cond)
		if err != nil {
			return err
		}
		c.bd.CondBr(cond, body, exit)
	} else {
		c.bd.Br(body)
	}

	c.breaks = append(c.breaks, exit)
	c.conts = append(c.conts, post)
	c.bd.SetBlock(body)
	if err := c.genStmt(s.Body); err != nil {
		return err
	}
	if c.bd.Cur.Term() == nil {
		c.bd.Br(post)
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.conts = c.conts[:len(c.conts)-1]

	c.bd.SetBlock(post)
	if s.Post != nil {
		if _, err := c.genExpr(s.Post); err != nil {
			return err
		}
	}
	c.bd.Br(head)
	c.bd.SetBlock(exit)
	return nil
}

func (c *compiler) genSwitch(s *SwitchStmt) error {
	tag, err := c.genExpr(s.Tag)
	if err != nil {
		return err
	}
	tag, err = c.convert(tag, ir.I64)
	if err != nil {
		return fmt.Errorf("switch tag: %w", err)
	}
	exit := c.newBlock("sw.end")
	caseBlocks := make([]*ir.Block, len(s.Cases))
	for i := range s.Cases {
		caseBlocks[i] = c.newBlock("sw.case")
	}
	def := exit
	var vals []int64
	var dests []*ir.Block
	for i, cs := range s.Cases {
		if cs.IsDefault {
			def = caseBlocks[i]
		} else {
			vals = append(vals, cs.Val)
			dests = append(dests, caseBlocks[i])
		}
	}
	c.bd.Switch(tag, def, vals, dests)

	c.breaks = append(c.breaks, exit)
	for i, cs := range s.Cases {
		c.bd.SetBlock(caseBlocks[i])
		for _, st := range cs.Body {
			if err := c.genStmt(st); err != nil {
				return err
			}
		}
		if c.bd.Cur.Term() == nil {
			// C fallthrough into the next case, or exit from the last.
			if i+1 < len(caseBlocks) {
				c.bd.Br(caseBlocks[i+1])
			} else {
				c.bd.Br(exit)
			}
		}
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.bd.SetBlock(exit)
	return nil
}

// --- expressions ---

// genCond evaluates e as a branch condition (i1).
func (c *compiler) genCond(e Expr) (ir.Value, error) {
	v, err := c.genExpr(e)
	if err != nil {
		return nil, err
	}
	return c.truthy(v), nil
}

// truthy converts any scalar value to i1 by comparing against zero/null.
func (c *compiler) truthy(v ir.Value) ir.Value {
	t := v.Type()
	switch {
	case t.Equal(ir.I1):
		return v
	case t.IsFloat():
		return c.bd.FCmp(ir.CmpNE, v, ir.ConstFloat(0))
	case t.IsPtr():
		return c.bd.ICmp(ir.CmpNE, v, ir.ConstNull(t))
	default:
		return c.bd.ICmp(ir.CmpNE, v, ir.ConstInt(t, 0))
	}
}

// convert coerces v to IR type to, inserting conversions as C would.
func (c *compiler) convert(v ir.Value, to *ir.Type) (ir.Value, error) {
	from := v.Type()
	if from.Equal(to) {
		return v, nil
	}
	switch {
	case from.IsInt() && to.IsInt():
		if cst, ok := v.(*ir.Const); ok {
			return ir.ConstInt(to, cst.I), nil
		}
		switch {
		case from.Bits < to.Bits:
			if from.Bits == 1 {
				return c.bd.Cast(ir.OpZExt, v, to), nil
			}
			return c.bd.Cast(ir.OpSExt, v, to), nil
		default:
			return c.bd.Cast(ir.OpTrunc, v, to), nil
		}
	case from.IsInt() && to.IsFloat():
		if cst, ok := v.(*ir.Const); ok {
			return ir.ConstFloat(float64(cst.I)), nil
		}
		return c.bd.Cast(ir.OpSIToFP, v, to), nil
	case from.IsFloat() && to.IsInt():
		if cst, ok := v.(*ir.Const); ok {
			return ir.ConstInt(to, int64(cst.F)), nil
		}
		return c.bd.Cast(ir.OpFPToSI, v, to), nil
	case from.IsPtr() && to.IsPtr():
		return c.bd.Cast(ir.OpBitcast, v, to), nil
	case from.IsPtr() && to.IsInt():
		return c.bd.Cast(ir.OpPtrToInt, v, to), nil
	case from.IsInt() && to.IsPtr():
		return c.bd.Cast(ir.OpIntToPtr, v, to), nil
	}
	return nil, fmt.Errorf("cannot convert %s to %s", from, to)
}

// promote applies the usual arithmetic conversions to a pair of operands.
// Pointers are rejected: implicit pointer-to-integer arithmetic would
// silently drop the element-size scaling C mandates.
func (c *compiler) promote(a, b ir.Value) (ir.Value, ir.Value, *ir.Type, error) {
	at, bt := a.Type(), b.Type()
	if at.IsPtr() || bt.IsPtr() {
		return nil, nil, nil, fmt.Errorf("arithmetic on pointer operand (%s, %s)", at, bt)
	}
	if at.IsFloat() || bt.IsFloat() {
		a2, err := c.convert(a, ir.F64)
		if err != nil {
			return nil, nil, nil, err
		}
		b2, err := c.convert(b, ir.F64)
		if err != nil {
			return nil, nil, nil, err
		}
		return a2, b2, ir.F64, nil
	}
	a2, err := c.convert(a, ir.I64)
	if err != nil {
		return nil, nil, nil, err
	}
	b2, err := c.convert(b, ir.I64)
	if err != nil {
		return nil, nil, nil, err
	}
	return a2, b2, ir.I64, nil
}

// genExpr evaluates e for its value.
func (c *compiler) genExpr(e Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *IntLit:
		return ir.ConstInt(ir.I64, x.Val), nil
	case *FloatLit:
		return ir.ConstFloat(x.Val), nil
	case *CharLit:
		return ir.ConstInt(ir.I8, int64(x.Val)), nil
	case *StringLit:
		g := c.stringGlobal(x.Val)
		return c.bd.GEP(g, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0)), nil
	case *ParenExpr:
		return c.genExpr(x.X)
	case *Ident:
		return c.genIdentValue(x)
	case *IndexExpr:
		ptr, err := c.genAddr(x)
		if err != nil {
			return nil, err
		}
		if ptr.Type().Elem.IsArray() {
			// Indexing into an inner dimension: decay to element pointer.
			return c.bd.GEP(ptr, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0)), nil
		}
		if ptr.Type().Elem.IsStruct() {
			return nil, fmt.Errorf("struct element used as a value; access a member or take its address")
		}
		return c.bd.Load(ptr), nil
	case *FieldExpr:
		ptr, err := c.genAddr(x)
		if err != nil {
			return nil, err
		}
		switch {
		case ptr.Type().Elem.IsArray():
			// Array members decay to a pointer to their first element.
			return c.bd.GEP(ptr, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0)), nil
		case ptr.Type().Elem.IsStruct():
			return nil, fmt.Errorf("struct member %s used as a value; access its members or take its address", x.Name)
		}
		return c.bd.Load(ptr), nil
	case *UnaryExpr:
		return c.genUnary(x)
	case *IncDecExpr:
		return c.genIncDec(x)
	case *BinaryExpr:
		return c.genBinary(x)
	case *AssignExpr:
		return c.genAssign(x)
	case *CondExpr:
		return c.genCondExpr(x)
	case *CallExpr:
		return c.genCall(x)
	case *CastExpr:
		v, err := c.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		to, err := c.irType(x.To)
		if err != nil {
			return nil, err
		}
		return c.convert(v, to)
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (c *compiler) genIdentValue(x *Ident) (ir.Value, error) {
	vi, ok := c.lookup(x.Name)
	if !ok {
		return nil, fmt.Errorf("undefined variable %s", x.Name)
	}
	if vi.ty.IsArray() {
		// Array-typed names decay to a pointer to the first element.
		return c.bd.GEP(vi.ptr, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 0)), nil
	}
	if vi.ty.IsStruct() {
		return nil, fmt.Errorf("struct %s used as a value; access a member or take its address", x.Name)
	}
	return c.bd.Load(vi.ptr), nil
}

// genAddr computes the lvalue address of e.
func (c *compiler) genAddr(e Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *ParenExpr:
		return c.genAddr(x.X)
	case *Ident:
		vi, ok := c.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("undefined variable %s", x.Name)
		}
		return vi.ptr, nil
	case *IndexExpr:
		idx, err := c.genExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		idx, err = c.convert(idx, ir.I64)
		if err != nil {
			return nil, err
		}
		// The base may itself be an array lvalue (step with a leading 0
		// index) or a pointer value (single scaled index).
		if base, err2 := c.arrayBase(x.X); err2 == nil && base != nil {
			return c.bd.GEP(base, ir.ConstInt(ir.I64, 0), idx), nil
		}
		pv, err := c.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !pv.Type().IsPtr() {
			return nil, fmt.Errorf("indexing non-pointer value of type %s", pv.Type())
		}
		return c.bd.GEP(pv, idx), nil
	case *FieldExpr:
		var base ir.Value
		var err error
		if x.Arrow {
			base, err = c.genExpr(x.X)
		} else {
			base, err = c.genAddr(x.X)
		}
		if err != nil {
			return nil, err
		}
		if !base.Type().IsPtr() || !base.Type().Elem.IsStruct() {
			op := "."
			if x.Arrow {
				op = "->"
			}
			return nil, fmt.Errorf("%s%s on non-struct operand of type %s", op, x.Name, base.Type())
		}
		si := c.byType[base.Type().Elem]
		if si == nil {
			return nil, fmt.Errorf("internal error: unregistered struct type %s", base.Type().Elem)
		}
		idx, ok := si.fieldIdx[x.Name]
		if !ok {
			return nil, fmt.Errorf("struct %s has no field %s", si.name, x.Name)
		}
		return c.bd.GEP(base, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, int64(idx))), nil
	case *UnaryExpr:
		if x.Op == "*" {
			pv, err := c.genExpr(x.X)
			if err != nil {
				return nil, err
			}
			if !pv.Type().IsPtr() {
				return nil, fmt.Errorf("dereferencing non-pointer of type %s", pv.Type())
			}
			return pv, nil
		}
	}
	return nil, fmt.Errorf("expression is not an lvalue")
}

// arrayBase returns a pointer to an array object when e denotes one
// directly (a named array or an element of a multi-dimensional array), or
// (nil, error) when e is not an array lvalue.
func (c *compiler) arrayBase(e Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *ParenExpr:
		return c.arrayBase(x.X)
	case *Ident:
		vi, ok := c.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("undefined variable %s", x.Name)
		}
		if vi.ty.IsArray() {
			return vi.ptr, nil
		}
		return nil, fmt.Errorf("not an array")
	case *IndexExpr:
		addr, err := c.genAddr(x)
		if err != nil {
			return nil, err
		}
		if addr.Type().Elem.IsArray() {
			return addr, nil
		}
		return nil, fmt.Errorf("not an array")
	case *FieldExpr:
		addr, err := c.genAddr(x)
		if err != nil {
			return nil, err
		}
		if addr.Type().Elem.IsArray() {
			return addr, nil
		}
		return nil, fmt.Errorf("not an array")
	}
	return nil, fmt.Errorf("not an array")
}

func (c *compiler) genUnary(x *UnaryExpr) (ir.Value, error) {
	switch x.Op {
	case "&":
		return c.genAddr(x.X)
	case "*":
		ptr, err := c.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !ptr.Type().IsPtr() {
			return nil, fmt.Errorf("dereferencing non-pointer of type %s", ptr.Type())
		}
		return c.bd.Load(ptr), nil
	case "-":
		v, err := c.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if v.Type().IsFloat() {
			return c.bd.FNeg(v), nil
		}
		v, err = c.convert(v, ir.I64)
		if err != nil {
			return nil, err
		}
		return c.bd.Sub(ir.ConstInt(ir.I64, 0), v), nil
	case "!":
		v, err := c.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		b := c.truthy(v)
		return c.bd.Xor(b, ir.ConstBool(true)), nil
	case "~":
		v, err := c.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		v, err = c.convert(v, ir.I64)
		if err != nil {
			return nil, err
		}
		return c.bd.Xor(v, ir.ConstInt(ir.I64, -1)), nil
	}
	return nil, fmt.Errorf("unknown unary operator %q", x.Op)
}

func (c *compiler) genIncDec(x *IncDecExpr) (ir.Value, error) {
	ptr, err := c.genAddr(x.X)
	if err != nil {
		return nil, err
	}
	old := c.bd.Load(ptr)
	var next ir.Value
	t := old.Type()
	switch {
	case t.IsFloat():
		one := ir.ConstFloat(1)
		if x.Op == "++" {
			next = c.bd.Binary(ir.OpFAdd, old, one)
		} else {
			next = c.bd.Binary(ir.OpFSub, old, one)
		}
	case t.IsPtr():
		step := int64(1)
		if x.Op == "--" {
			step = -1
		}
		next = c.bd.GEP(old, ir.ConstInt(ir.I64, step))
	default:
		one := ir.ConstInt(t, 1)
		if x.Op == "++" {
			next = c.bd.Add(old, one)
		} else {
			next = c.bd.Sub(old, one)
		}
	}
	c.bd.Store(next, ptr)
	if x.Post {
		return old, nil
	}
	return next, nil
}

var cmpOps = map[string]ir.CmpPred{
	"==": ir.CmpEQ, "!=": ir.CmpNE, "<": ir.CmpSLT, "<=": ir.CmpSLE,
	">": ir.CmpSGT, ">=": ir.CmpSGE,
}

var intOps = map[string]ir.Opcode{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpSDiv,
	"%": ir.OpSRem, "<<": ir.OpShl, ">>": ir.OpAShr, "&": ir.OpAnd,
	"|": ir.OpOr, "^": ir.OpXor,
}

var floatOps = map[string]ir.Opcode{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
	"%": ir.OpFRem,
}

func (c *compiler) genBinary(x *BinaryExpr) (ir.Value, error) {
	switch x.Op {
	case "&&", "||":
		return c.genLogical(x)
	}
	a, err := c.genExpr(x.X)
	if err != nil {
		return nil, err
	}
	b, err := c.genExpr(x.Y)
	if err != nil {
		return nil, err
	}
	if pred, ok := cmpOps[x.Op]; ok {
		return c.genCompare(pred, a, b)
	}
	// Pointer arithmetic: p + i, p - i, i + p.
	if !a.Type().IsPtr() && b.Type().IsPtr() && x.Op == "+" {
		a, b = b, a
	}
	if a.Type().IsPtr() && (x.Op == "+" || x.Op == "-") {
		b, err = c.convert(b, ir.I64)
		if err != nil {
			return nil, err
		}
		if x.Op == "-" {
			b = c.bd.Sub(ir.ConstInt(ir.I64, 0), b)
		}
		return c.bd.GEP(a, b), nil
	}
	a, b, t, err := c.promote(a, b)
	if err != nil {
		return nil, err
	}
	if t.IsFloat() {
		op, ok := floatOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("operator %q not defined on float", x.Op)
		}
		return c.bd.Binary(op, a, b), nil
	}
	op, ok := intOps[x.Op]
	if !ok {
		return nil, fmt.Errorf("unknown binary operator %q", x.Op)
	}
	return c.bd.Binary(op, a, b), nil
}

func (c *compiler) genCompare(pred ir.CmpPred, a, b ir.Value) (ir.Value, error) {
	if a.Type().IsPtr() && b.Type().IsPtr() {
		return c.bd.ICmp(pred, a, b), nil
	}
	a2, b2, t, err := c.promote(a, b)
	if err != nil {
		return nil, err
	}
	if t.IsFloat() {
		return c.bd.FCmp(pred, a2, b2), nil
	}
	return c.bd.ICmp(pred, a2, b2), nil
}

// genLogical emits short-circuit && / || with control flow and a phi, the
// same shape clang emits at -O0 (after its select canonicalizations).
func (c *compiler) genLogical(x *BinaryExpr) (ir.Value, error) {
	a, err := c.genCond(x.X)
	if err != nil {
		return nil, err
	}
	lhsBlock := c.bd.Cur
	rhs := c.newBlock("land.rhs")
	merge := c.newBlock("land.end")
	if x.Op == "&&" {
		c.bd.CondBr(a, rhs, merge)
	} else {
		c.bd.CondBr(a, merge, rhs)
	}
	c.bd.SetBlock(rhs)
	b, err := c.genCond(x.Y)
	if err != nil {
		return nil, err
	}
	rhsBlock := c.bd.Cur
	c.bd.Br(merge)

	c.bd.SetBlock(merge)
	phi := c.bd.Phi(ir.I1)
	phi.SetPhiIncoming(lhsBlock, ir.ConstBool(x.Op == "||"))
	phi.SetPhiIncoming(rhsBlock, b)
	return phi, nil
}

func (c *compiler) genAssign(x *AssignExpr) (ir.Value, error) {
	ptr, err := c.genAddr(x.LHS)
	if err != nil {
		return nil, err
	}
	var val ir.Value
	if x.Op == "=" {
		val, err = c.genExpr(x.RHS)
		if err != nil {
			return nil, err
		}
	} else {
		// Compound assignment: load, apply, store.
		bin := &BinaryExpr{Op: x.Op[:len(x.Op)-1], X: x.LHS, Y: x.RHS}
		val, err = c.genBinary(bin)
		if err != nil {
			return nil, err
		}
	}
	if ptr.Type().Elem.IsStruct() {
		return nil, fmt.Errorf("whole-struct assignment is not supported; assign fields individually")
	}
	val, err = c.convert(val, ptr.Type().Elem)
	if err != nil {
		return nil, fmt.Errorf("assignment: %w", err)
	}
	c.bd.Store(val, ptr)
	return val, nil
}

func (c *compiler) genCondExpr(x *CondExpr) (ir.Value, error) {
	cond, err := c.genCond(x.Cond)
	if err != nil {
		return nil, err
	}
	then := c.newBlock("cond.then")
	els := c.newBlock("cond.else")
	merge := c.newBlock("cond.end")
	c.bd.CondBr(cond, then, els)

	c.bd.SetBlock(then)
	tv, err := c.genExpr(x.Then)
	if err != nil {
		return nil, err
	}
	thenOut := c.bd.Cur

	c.bd.SetBlock(els)
	ev, err := c.genExpr(x.Else)
	if err != nil {
		return nil, err
	}
	elsOut := c.bd.Cur

	// Unify types.
	var ty *ir.Type
	switch {
	case tv.Type().IsFloat() || ev.Type().IsFloat():
		ty = ir.F64
	case tv.Type().IsPtr():
		ty = tv.Type()
	default:
		ty = ir.I64
	}
	c.bd.SetBlock(thenOut)
	tv, err = c.convert(tv, ty)
	if err != nil {
		return nil, err
	}
	c.bd.Br(merge)
	c.bd.SetBlock(elsOut)
	ev, err = c.convert(ev, ty)
	if err != nil {
		return nil, err
	}
	c.bd.Br(merge)

	c.bd.SetBlock(merge)
	phi := c.bd.Phi(ty)
	phi.SetPhiIncoming(thenOut, tv)
	phi.SetPhiIncoming(elsOut, ev)
	return phi, nil
}

func (c *compiler) stringGlobal(s string) *ir.Global {
	if g, ok := c.strLits[s]; ok {
		return g
	}
	c.nstr++
	data := make([]int64, len(s)+1)
	for i := 0; i < len(s); i++ {
		data[i] = int64(s[i])
	}
	g := &ir.Global{
		Name:  fmt.Sprintf(".str%d", c.nstr),
		Elem:  ir.ArrayOf(ir.I8, len(s)+1),
		InitI: data,
		Const: true,
	}
	c.mod.AddGlobal(g)
	c.strLits[s] = g
	return g
}
