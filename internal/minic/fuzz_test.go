package minic_test

import (
	"testing"

	"repro/internal/minic"
)

// FuzzParser feeds arbitrary byte strings through the lexer and parser,
// which must return errors rather than panic. The seed corpus under
// testdata/fuzz covers every statement and expression form; plain `go test`
// replays it, `go test -fuzz FuzzParser` explores mutations.
func FuzzParser(f *testing.F) {
	for _, s := range parserSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := minic.Parse(src)
		if err != nil {
			return
		}
		// A successfully parsed file must also print.
		_ = minic.Print(file)
	})
}

// FuzzRoundTrip checks the printer/parser contract on every input the
// parser accepts: Print must re-parse, and Print∘Parse must be a fixpoint.
func FuzzRoundTrip(f *testing.F) {
	for _, s := range parserSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := minic.Parse(src)
		if err != nil {
			return
		}
		p1 := minic.Print(f1)
		f2, err := minic.Parse(p1)
		if err != nil {
			t.Fatalf("printed source no longer parses: %v\n%s", err, p1)
		}
		if p2 := minic.Print(f2); p1 != p2 {
			t.Fatalf("printer not a fixpoint:\n%s\nvs\n%s", p1, p2)
		}
	})
}

// parserSeeds covers the language surface: one entry per construct family.
var parserSeeds = []string{
	"int main() { return 0; }",
	"int g = 3; int main() { return g; }",
	"int a[4] = {1, 2, 3, 4}; int main() { a[0] = a[3]; return a[0]; }",
	"struct p { int x; int y; }; int main() { struct p v; v.x = 1; return v.x + v.y; }",
	"int f(int *q) { *q = *q + 1; return *q; } int main() { int v = 2; return f(&v); }",
	"float h(float x) { return x * 1.5; } int main() { float f = h(2.0); return (int)f; }",
	"int main() { for (int i = 0; i < 3; i++) { print(i); } return 0; }",
	"int main() { int t = 0; while (t < 5) { t = t + 1; } return t; }",
	"int main() { int d = 0; do { d++; } while (d < 2); return d; }",
	"int main() { int x = 2; switch (x) { case 0: return 9; case 2: { x = 7; } break; default: x = 1; } return x; }",
	"int main() { int x = -4; return x < 0 ? - x : x; }",
	"int main() { char c = 'q'; printc(c); prints(\"hi\"); return c; }",
	"int main() { int m[2][3]; m[1][2] = 5; return m[1][2]; }",
	"int main() { int x = 1; x += 2; x <<= 1; x ^= 3; return x % 7; }",
	"int rec(int n) { if (n <= 0) { return 1; } return n * rec(n - 1); } int main() { return rec(5); }",
	"int main() { if (1 && 0 || !0) { return 1; } else { return 2; } }",
	"int main() { break; }",       // parses or errors, must not panic
	"int main() { return",         // truncated input
	"struct s { int",              // truncated struct
	"int main() { int x = 08; }",  // odd literal
	"\x00\xff{{{",                 // garbage bytes
}
