// Package minic implements the front end of the arena: a C-subset language
// ("MiniC") with a lexer, parser, AST, source printer and code generator
// lowering to the SSA IR of internal/ir. It plays the role of clang in the
// paper: the dataset generators emit MiniC source, the Zhang-style evaders
// transform MiniC ASTs, and everything downstream works on IR.
package minic

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokChar
	TokString
	TokPunct   // operators and delimiters
	TokKeyword // reserved words
)

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	// IntVal/FloatVal hold decoded literal payloads.
	IntVal   int64
	FloatVal float64
	Line     int
	Col      int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "float": true, "double": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"switch": true, "case": true, "default": true, "break": true,
	"continue": true, "return": true, "const": true, "struct": true,
}

// Lexer tokenizes MiniC source text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return fmt.Errorf("line %d: unterminated block comment", lx.line)
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		case c == '#':
			// Preprocessor-style lines (e.g. #include) are ignored, so that
			// C-flavoured generator output lexes cleanly.
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentStart(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		tok.Text = lx.src[start:lx.pos]
		if keywords[tok.Text] {
			tok.Kind = TokKeyword
		} else {
			tok.Kind = TokIdent
		}
		return tok, nil

	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		return lx.lexNumber()

	case c == '\'':
		return lx.lexChar()

	case c == '"':
		return lx.lexString()
	}
	for _, p := range puncts {
		if len(lx.src)-lx.pos >= len(p) && lx.src[lx.pos:lx.pos+len(p)] == p {
			for range p {
				lx.advance()
			}
			tok.Kind = TokPunct
			tok.Text = p
			return tok, nil
		}
	}
	return tok, fmt.Errorf("line %d: unexpected character %q", lx.line, string(c))
}

func (lx *Lexer) lexNumber() (Token, error) {
	tok := Token{Line: lx.line, Col: lx.col}
	start := lx.pos
	isFloat := false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHex(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		var v int64
		if _, err := fmt.Sscanf(text, "%v", &v); err != nil {
			return tok, fmt.Errorf("line %d: bad hex literal %q", tok.Line, text)
		}
		tok.Kind = TokInt
		tok.Text = text
		tok.IntVal = v
		return tok, nil
	}
	for lx.pos < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' {
		isFloat = true
		lx.advance()
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		save := lx.pos
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isFloat = true
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			lx.pos = save
		}
	}
	text := lx.src[start:lx.pos]
	tok.Text = text
	if isFloat {
		tok.Kind = TokFloat
		if _, err := fmt.Sscanf(text, "%g", &tok.FloatVal); err != nil {
			return tok, fmt.Errorf("line %d: bad float literal %q", tok.Line, text)
		}
	} else {
		tok.Kind = TokInt
		if _, err := fmt.Sscanf(text, "%d", &tok.IntVal); err != nil {
			return tok, fmt.Errorf("line %d: bad int literal %q", tok.Line, text)
		}
	}
	return tok, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *Lexer) lexChar() (Token, error) {
	tok := Token{Kind: TokChar, Line: lx.line, Col: lx.col}
	lx.advance() // opening quote
	if lx.pos >= len(lx.src) {
		return tok, fmt.Errorf("line %d: unterminated char literal", tok.Line)
	}
	c := lx.advance()
	if c == '\\' {
		e, err := lx.escape()
		if err != nil {
			return tok, err
		}
		c = e
	}
	if lx.pos >= len(lx.src) || lx.advance() != '\'' {
		return tok, fmt.Errorf("line %d: unterminated char literal", tok.Line)
	}
	tok.IntVal = int64(c)
	tok.Text = string(c)
	return tok, nil
}

func (lx *Lexer) lexString() (Token, error) {
	tok := Token{Kind: TokString, Line: lx.line, Col: lx.col}
	lx.advance() // opening quote
	var buf []byte
	for {
		if lx.pos >= len(lx.src) {
			return tok, fmt.Errorf("line %d: unterminated string", tok.Line)
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, err := lx.escape()
			if err != nil {
				return tok, err
			}
			c = e
		}
		buf = append(buf, c)
	}
	tok.Text = string(buf)
	return tok, nil
}

func (lx *Lexer) escape() (byte, error) {
	if lx.pos >= len(lx.src) {
		return 0, fmt.Errorf("line %d: bad escape", lx.line)
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, fmt.Errorf("line %d: unknown escape \\%c", lx.line, c)
}

// LexAll tokenizes the whole input, returning the tokens excluding EOF.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
