package minic_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/minic"

	_ "repro/internal/vm" // registers the "vm" engine
)

// wantRetEngines compiles src once and runs it on every registered engine,
// requiring each to return want. Regression tests for semantics bugs go
// through here so a fix in the front end is pinned under both executors.
func wantRetEngines(t *testing.T, src string, want int64) {
	t.Helper()
	mod, err := minic.CompileSource(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, name := range interp.EngineNames() {
		eng, err := interp.EngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(mod, interp.Options{})
		if err != nil {
			t.Fatalf("engine %s: %v\nIR:\n%s", name, err, mod.String())
		}
		if res.Ret != want {
			t.Errorf("engine %s: ret = %d, want %d\nsrc: %s", name, res.Ret, want, src)
		}
	}
}

// TestShiftCountFolding pins the constant-folding fix for shift counts
// outside [0, 63]: the folder must mask the count by 63 exactly like the
// runtime Shl/AShr ops do, instead of hitting Go's shift semantics (which
// panic on negative counts and flush to 0/-1 on counts >= 64). Counts -1,
// 63, 64 and 65 bracket the mask boundary; both shift directions and both
// the constant-folded and the runtime path must agree, on both engines.
func TestShiftCountFolding(t *testing.T) {
	cases := []struct {
		x, n int64
	}{
		{1, -1}, {1, 63}, {1, 64}, {1, 65},
		{-8, -1}, {-8, 63}, {-8, 64}, {-8, 65},
		{5, -1}, {5, 63}, {5, 64}, {5, 65},
	}
	for _, tc := range cases {
		sh := uint64(tc.n) & 63
		wantShl := tc.x << sh
		wantShr := tc.x >> sh

		// Constant path: the whole shift is a literal expression, so the
		// front end folds it at compile time.
		wantRetEngines(t,
			fmt.Sprintf("int main() { return %d << %d; }", tc.x, tc.n), wantShl)
		wantRetEngines(t,
			fmt.Sprintf("int main() { return %d >> %d; }", tc.x, tc.n), wantShr)

		// Runtime path: the operands arrive through function parameters, so
		// the shift survives to an IR Shl/AShr and executes in the engine.
		wantRetEngines(t, fmt.Sprintf(
			"int shl(int x, int n) { return x << n; } int main() { return shl(%d, %d); }",
			tc.x, tc.n), wantShl)
		wantRetEngines(t, fmt.Sprintf(
			"int shr(int x, int n) { return x >> n; } int main() { return shr(%d, %d); }",
			tc.x, tc.n), wantShr)
	}

	// The mask boundary in one number: count -1 masks to 63, so 1 << -1 is
	// MinInt64 rather than a panic or zero.
	wantRetEngines(t, "int main() { return (1 << -1) == (1 << 63); }", 1)
	wantRetEngines(t, "int main() { return 1 << 63; }", math.MinInt64)
}
