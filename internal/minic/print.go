package minic

import (
	"fmt"
	"strings"
)

// Print renders the AST back to MiniC source. Output parses back to an
// equivalent AST (modulo ParenExpr insertion), which the srcobf round-trip
// tests rely on.
func Print(f *File) string {
	var pr printer
	for _, d := range f.Decls {
		pr.decl(d)
	}
	return pr.sb.String()
}

// PrintStmt renders one statement (exported for debugging and tests).
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.sb.String()
}

// PrintExpr renders one expression.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e, 0)
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...interface{}) {
	p.sb.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) typeStr(t TypeSpec) string {
	base := t.Base.String()
	if t.Base == TStruct {
		base = "struct " + t.Struct
	}
	return base + strings.Repeat("*", t.Ptr)
}

func (p *printer) dims(t TypeSpec) string {
	var sb strings.Builder
	for _, d := range t.Dims {
		fmt.Fprintf(&sb, "[%d]", d)
	}
	return sb.String()
}

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *StructDecl:
		p.line("struct %s {", x.Name)
		p.indent++
		for _, f := range x.Fields {
			p.line("%s;", p.varDeclStr(f))
		}
		p.indent--
		p.line("};")
	case *VarDecl:
		p.line("%s;", p.varDeclStr(x))
	case *FuncDecl:
		params := make([]string, len(x.Params))
		for i, pd := range x.Params {
			s := p.typeStr(pd.Type) + " " + pd.Name
			if pd.Array {
				s += "[]" + p.dims(pd.Type)
			}
			params[i] = s
		}
		p.line("%s %s(%s) {", p.typeStr(x.Ret), x.Name, strings.Join(params, ", "))
		p.indent++
		for _, s := range x.Body.List {
			p.stmt(s)
		}
		p.indent--
		p.line("}")
	}
}

func (p *printer) varDeclStr(v *VarDecl) string {
	s := ""
	if v.Const {
		s += "const "
	}
	s += p.typeStr(v.Type) + " " + v.Name + p.dims(v.Type)
	if v.Init != nil {
		s += " = " + PrintExpr(v.Init)
	} else if v.Inits != nil {
		parts := make([]string, len(v.Inits))
		for i, e := range v.Inits {
			parts[i] = PrintExpr(e)
		}
		s += " = {" + strings.Join(parts, ", ") + "}"
	}
	return s
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, st := range x.List {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		for _, v := range x.Vars {
			p.line("%s;", p.varDeclStr(v))
		}
	case *IfStmt:
		p.line("if (%s)", PrintExpr(x.Cond))
		p.nested(x.Then)
		if x.Else != nil {
			p.line("else")
			p.nested(x.Else)
		}
	case *WhileStmt:
		p.line("while (%s)", PrintExpr(x.Cond))
		p.nested(x.Body)
	case *DoWhileStmt:
		p.line("do")
		p.nested(x.Body)
		p.line("while (%s);", PrintExpr(x.Cond))
	case *ForStmt:
		init := ""
		switch i := x.Init.(type) {
		case *DeclStmt:
			parts := make([]string, len(i.Vars))
			for k, v := range i.Vars {
				parts[k] = p.varDeclStr(v)
			}
			init = strings.Join(parts, ", ")
			// Re-printing multi-decl for-inits as comma-joined works because
			// MiniC for-init decls share one base type.
			if len(i.Vars) > 1 {
				first := p.typeStr(i.Vars[0].Type) + " "
				for k := 1; k < len(parts); k++ {
					parts[k] = strings.TrimPrefix(parts[k], first)
				}
				init = strings.Join(parts, ", ")
			}
		case *ExprStmt:
			init = PrintExpr(i.X)
		}
		cond, post := "", ""
		if x.Cond != nil {
			cond = PrintExpr(x.Cond)
		}
		if x.Post != nil {
			post = PrintExpr(x.Post)
		}
		p.line("for (%s; %s; %s)", init, cond, post)
		p.nested(x.Body)
	case *SwitchStmt:
		p.line("switch (%s) {", PrintExpr(x.Tag))
		for _, c := range x.Cases {
			if c.IsDefault {
				p.line("default:")
			} else {
				p.line("case %d:", c.Val)
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.line("}")
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ReturnStmt:
		if x.Val == nil {
			p.line("return;")
		} else {
			p.line("return %s;", PrintExpr(x.Val))
		}
	case *ExprStmt:
		p.line("%s;", PrintExpr(x.X))
	case *EmptyStmt:
		p.line(";")
	}
}

// nested prints a statement in a position where C allows a bare statement;
// non-blocks are wrapped in braces so re-parsing is unambiguous.
func (p *printer) nested(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.stmt(b)
		return
	}
	p.line("{")
	p.indent++
	p.stmt(s)
	p.indent--
	p.line("}")
}

func (p *printer) expr(e Expr, prec int) {
	p.sb.WriteString(exprString(e))
}

func exprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.Val)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *CharLit:
		switch x.Val {
		case '\n':
			return `'\n'`
		case '\t':
			return `'\t'`
		case '\'':
			return `'\''`
		case '\\':
			return `'\\'`
		case 0:
			return `'\0'`
		}
		return "'" + string(x.Val) + "'"
	case *StringLit:
		s := x.Val
		s = strings.ReplaceAll(s, `\`, `\\`)
		s = strings.ReplaceAll(s, `"`, `\"`)
		s = strings.ReplaceAll(s, "\n", `\n`)
		s = strings.ReplaceAll(s, "\t", `\t`)
		return `"` + s + `"`
	case *BinaryExpr:
		return "(" + exprString(x.X) + " " + x.Op + " " + exprString(x.Y) + ")"
	case *UnaryExpr:
		return "(" + x.Op + exprString(x.X) + ")"
	case *IncDecExpr:
		if x.Post {
			return exprString(x.X) + x.Op
		}
		return x.Op + exprString(x.X)
	case *AssignExpr:
		return exprString(x.LHS) + " " + x.Op + " " + exprString(x.RHS)
	case *CondExpr:
		return "(" + exprString(x.Cond) + " ? " + exprString(x.Then) + " : " + exprString(x.Else) + ")"
	case *CallExpr:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = exprString(a)
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")"
	case *IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Idx) + "]"
	case *FieldExpr:
		if x.Arrow {
			return exprString(x.X) + "->" + x.Name
		}
		return exprString(x.X) + "." + x.Name
	case *CastExpr:
		base := x.To.Base.String()
		if x.To.Base == TStruct {
			base = "struct " + x.To.Struct
		}
		return "((" + base + strings.Repeat("*", x.To.Ptr) + ")" + exprString(x.X) + ")"
	case *ParenExpr:
		// Self-parenthesizing children already print their own parens, so
		// skipping the redundant pair keeps Print ∘ Parse idempotent.
		switch x.X.(type) {
		case *BinaryExpr, *UnaryExpr, *CondExpr, *ParenExpr, *CastExpr:
			return exprString(x.X)
		}
		return "(" + exprString(x.X) + ")"
	}
	return "?"
}
