package minic

import (
	"fmt"

	"repro/internal/ir"
)

// builtinSig describes a runtime builtin callable from MiniC.
type builtinSig struct {
	// name is the IR-level builtin name.
	name string
	// params are the IR parameter types; nil entries accept any scalar
	// after the usual promotion to i64/f64.
	params []*ir.Type
	// ret is the result type.
	ret *ir.Type
}

// builtins maps MiniC-level names to runtime builtins. print is handled
// separately because it dispatches on the argument type.
var builtins = map[string]builtinSig{
	"prints": {name: "print_str", params: []*ir.Type{ir.PtrTo(ir.I8)}, ret: ir.Void},
	"printc": {name: "print_i8", params: []*ir.Type{ir.I8}, ret: ir.Void},
	"input":  {name: "input_i64", params: nil, ret: ir.I64},
	"inputf": {name: "input_f64", params: nil, ret: ir.F64},
	"sqrt":   {name: "sqrt", params: []*ir.Type{ir.F64}, ret: ir.F64},
	"fabs":   {name: "fabs", params: []*ir.Type{ir.F64}, ret: ir.F64},
	"sin":    {name: "sin", params: []*ir.Type{ir.F64}, ret: ir.F64},
	"cos":    {name: "cos", params: []*ir.Type{ir.F64}, ret: ir.F64},
	"exp":    {name: "exp", params: []*ir.Type{ir.F64}, ret: ir.F64},
	"log":    {name: "log", params: []*ir.Type{ir.F64}, ret: ir.F64},
	"floor":  {name: "floor", params: []*ir.Type{ir.F64}, ret: ir.F64},
	"pow":    {name: "pow", params: []*ir.Type{ir.F64, ir.F64}, ret: ir.F64},
}

func (c *compiler) genCall(x *CallExpr) (ir.Value, error) {
	// print dispatches on the promoted argument type.
	if x.Name == "print" {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("print takes one argument")
		}
		v, err := c.genExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		switch {
		case v.Type().IsFloat():
			return c.bd.CallBuiltin("print_f64", ir.Void, v), nil
		case v.Type().IsPtr():
			return c.bd.CallBuiltin("print_str", ir.Void, v), nil
		default:
			v, err = c.convert(v, ir.I64)
			if err != nil {
				return nil, err
			}
			return c.bd.CallBuiltin("print_i64", ir.Void, v), nil
		}
	}
	if x.Name == "abs" {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("abs takes one argument")
		}
		v, err := c.genExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		if v.Type().IsFloat() {
			return c.bd.CallBuiltin("fabs", ir.F64, v), nil
		}
		v, err = c.convert(v, ir.I64)
		if err != nil {
			return nil, err
		}
		return c.bd.CallBuiltin("abs_i64", ir.I64, v), nil
	}
	if sig, ok := builtins[x.Name]; ok {
		if len(x.Args) != len(sig.params) {
			return nil, fmt.Errorf("%s takes %d arguments, got %d", x.Name, len(sig.params), len(x.Args))
		}
		args := make([]ir.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := c.genExpr(a)
			if err != nil {
				return nil, err
			}
			v, err = c.convert(v, sig.params[i])
			if err != nil {
				return nil, fmt.Errorf("argument %d of %s: %w", i+1, x.Name, err)
			}
			args[i] = v
		}
		return c.bd.CallBuiltin(sig.name, sig.ret, args...), nil
	}

	callee := c.fns[x.Name]
	if callee == nil {
		return nil, fmt.Errorf("call to undefined function %s", x.Name)
	}
	if len(x.Args) != len(callee.Sig.Params) {
		return nil, fmt.Errorf("%s takes %d arguments, got %d", x.Name, len(callee.Sig.Params), len(x.Args))
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := c.genExpr(a)
		if err != nil {
			return nil, err
		}
		v, err = c.convert(v, callee.Sig.Params[i])
		if err != nil {
			return nil, fmt.Errorf("argument %d of %s: %w", i+1, x.Name, err)
		}
		args[i] = v
	}
	return c.bd.Call(callee, args...), nil
}
