package minic_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/progen"
)

// randExpr is progen's promoted expression generator; the quick tests below
// and the differential fuzzer share one grammar.
func randExpr(rng *rand.Rand, vars []string, depth int) string {
	return progen.RandExpr(rng, vars, depth)
}

// TestQuickPrintParseFixpoint: for random programs, Print∘Parse is a
// fixpoint and preserves behaviour.
func TestQuickPrintParseFixpoint(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := []string{"a", "b", "c"}
		var sb strings.Builder
		sb.WriteString("int main() {\n")
		for i, v := range vars {
			fmt.Fprintf(&sb, "int %s = %d;\n", v, rng.Intn(40)-20+i)
		}
		for i := 0; i < 3+rng.Intn(4); i++ {
			v := vars[rng.Intn(len(vars))]
			fmt.Fprintf(&sb, "%s = %s;\n", v, randExpr(rng, vars, 3))
		}
		fmt.Fprintf(&sb, "return (%s) %% 100000;\n}\n", randExpr(rng, vars, 2))
		src := sb.String()

		f1, err := minic.Parse(src)
		if err != nil {
			t.Logf("parse: %v\n%s", err, src)
			return false
		}
		p1 := minic.Print(f1)
		f2, err := minic.Parse(p1)
		if err != nil {
			t.Logf("reparse: %v\n%s", err, p1)
			return false
		}
		p2 := minic.Print(f2)
		if p1 != p2 {
			t.Logf("printer not a fixpoint:\n%s\nvs\n%s", p1, p2)
			return false
		}
		// Behaviour equality original vs round-tripped.
		m1, err := minic.Compile(f1, "a")
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		m2, err := minic.Compile(f2, "b")
		if err != nil {
			t.Logf("compile roundtrip: %v", err)
			return false
		}
		r1, err1 := interp.Run(m1, interp.Options{MaxSteps: 1_000_000})
		r2, err2 := interp.Run(m2, interp.Options{MaxSteps: 1_000_000})
		if (err1 == nil) != (err2 == nil) {
			t.Logf("trap divergence: %v vs %v", err1, err2)
			return false
		}
		if err1 != nil {
			return true // both trapped identically (e.g. division overflow)
		}
		return r1.Ret == r2.Ret
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLexerNeverPanics: arbitrary byte strings must produce a token
// stream or an error, never a panic.
func TestQuickLexerNeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = minic.LexAll(string(data))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserNeverPanics: same guarantee one level up.
func TestQuickParserNeverPanics(t *testing.T) {
	fragments := []string{
		"int", "main", "(", ")", "{", "}", ";", "if", "else", "while",
		"for", "return", "x", "=", "+", "1", "[", "]", "switch", "case",
		"0", ":", "break", ",", "*", "&", "float", "char", "'a'", `"s"`,
	}
	prop := func(seed int64, n uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < int(n%64); i++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		_, _ = minic.Parse(sb.String())
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
