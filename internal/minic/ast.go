package minic

// BaseType is a MiniC scalar base type.
type BaseType int

// The scalar base types of MiniC.
const (
	TVoid   BaseType = iota
	TInt             // 64-bit signed integer
	TFloat           // 64-bit floating point ("float" and "double" both map here)
	TChar            // 8-bit signed integer
	TStruct          // named struct; TypeSpec.Struct holds the tag
)

func (b BaseType) String() string {
	switch b {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TChar:
		return "char"
	case TStruct:
		return "struct"
	default:
		return "void"
	}
}

// TypeSpec is a declared MiniC type: a base type plus pointer depth and
// optional array dimensions ("int **p", "float m[8][8]", "struct pt *p").
type TypeSpec struct {
	Base   BaseType
	Struct string // struct tag when Base == TStruct
	Ptr    int    // pointer indirections
	Dims   []int  // array dimensions, outermost first; empty for scalars
}

// IsArray reports whether the spec declares an array.
func (t TypeSpec) IsArray() bool { return len(t.Dims) > 0 }

// ElemSpec returns the spec with the outermost array dimension removed.
func (t TypeSpec) ElemSpec() TypeSpec {
	u := t
	u.Dims = append([]int(nil), t.Dims[1:]...)
	return u
}

// File is a parsed translation unit.
type File struct {
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface{ decl() }

// StructDecl defines a struct type: "struct Name { fields };".
type StructDecl struct {
	Name   string
	Fields []*VarDecl // Init/Inits unused; Dims allowed (member arrays)
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    TypeSpec
	Params []*ParamDecl
	Body   *BlockStmt
}

// ParamDecl is a formal parameter. Array parameters decay to pointers.
type ParamDecl struct {
	Name  string
	Type  TypeSpec
	Array bool // declared with [] suffix
}

// VarDecl declares one variable, optionally initialized. At the top level
// it declares a global.
type VarDecl struct {
	Name  string
	Type  TypeSpec
	Init  Expr   // scalar initializer, may be nil
	Inits []Expr // array initializer list, may be nil
	Const bool
}

func (*FuncDecl) decl()   {}
func (*VarDecl) decl()    {}
func (*StructDecl) decl() {}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is a braced statement list.
type BlockStmt struct{ List []Stmt }

// DeclStmt wraps local variable declarations.
type DeclStmt struct{ Vars []*VarDecl }

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
}

// ForStmt is a C for loop. Init may be a DeclStmt or ExprStmt; any of the
// three clauses may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// SwitchCase is one case (or default when IsDefault) of a switch.
type SwitchCase struct {
	Val       int64
	IsDefault bool
	Body      []Stmt
}

// SwitchStmt is a C switch with fallthrough semantics.
type SwitchStmt struct {
	Tag   Expr
	Cases []*SwitchCase
}

// BreakStmt breaks the innermost loop or switch.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

// ReturnStmt returns from the function; Val may be nil.
type ReturnStmt struct{ Val Expr }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{}

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*SwitchStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ReturnStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*EmptyStmt) stmt()    {}

// Expr is an expression node.
type Expr interface{ expr() }

// Ident references a variable.
type Ident struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ Val float64 }

// CharLit is a character literal.
type CharLit struct{ Val byte }

// StringLit is a string literal.
type StringLit struct{ Val string }

// BinaryExpr applies a binary operator: + - * / % << >> < <= > >= == !=
// & | ^ && ||.
type BinaryExpr struct {
	Op   string
	X, Y Expr
}

// UnaryExpr applies a prefix operator: - ! ~ * & ++ --.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IncDecExpr is x++ / x-- / ++x / --x.
type IncDecExpr struct {
	X    Expr
	Op   string // "++" or "--"
	Post bool
}

// AssignExpr is an assignment; Op is "=", "+=", "-=", "*=", "/=", "%=",
// "&=", "|=", "^=", "<<=" or ">>=".
type AssignExpr struct {
	Op  string
	LHS Expr
	RHS Expr
}

// CondExpr is the ternary operator.
type CondExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

// CallExpr calls a named function or builtin.
type CallExpr struct {
	Name string
	Args []Expr
}

// IndexExpr is array indexing x[i].
type IndexExpr struct {
	X   Expr
	Idx Expr
}

// FieldExpr is struct member access: x.name, or x->name when Arrow.
type FieldExpr struct {
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is an explicit cast (int)x, (float)x, (char)x.
type CastExpr struct {
	To TypeSpec
	X  Expr
}

// ParenExpr preserves explicit parentheses (kept so the source printer
// round-trips faithfully; codegen ignores it).
type ParenExpr struct{ X Expr }

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*CharLit) expr()    {}
func (*StringLit) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*IncDecExpr) expr() {}
func (*AssignExpr) expr() {}
func (*CondExpr) expr()   {}
func (*CallExpr) expr()   {}
func (*IndexExpr) expr()  {}
func (*FieldExpr) expr()  {}
func (*CastExpr) expr()   {}
func (*ParenExpr) expr()  {}
