package minic

import "fmt"

// Parser builds a File from tokens via recursive descent.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	file := &File{}
	for !p.atEOF() {
		d, err := p.parseTopDecl()
		if err != nil {
			return nil, err
		}
		file.Decls = append(file.Decls, d...)
	}
	return file, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) at(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *Parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	t := p.cur()
	return fmt.Errorf("line %d: expected %q, found %s", t.Line, s, t)
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: "+format, append([]interface{}{p.cur().Line}, args...)...)
}

// isTypeKeyword reports whether the current token starts a type.
func (p *Parser) isTypeKeyword() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "int", "float", "double", "char", "void", "const", "struct":
		return true
	}
	return false
}

// parseBaseType parses the scalar or struct base of a type. For structs the
// returned tag names the struct.
func (p *Parser) parseBaseType() (BaseType, string, bool, error) {
	isConst := false
	for p.accept("const") {
		isConst = true
	}
	t := p.cur()
	if t.Kind != TokKeyword {
		return TVoid, "", isConst, p.errorf("expected type, found %s", t)
	}
	var b BaseType
	tag := ""
	switch t.Text {
	case "int":
		b = TInt
	case "float", "double":
		b = TFloat
	case "char":
		b = TChar
	case "void":
		b = TVoid
	case "struct":
		p.pos++
		nt := p.cur()
		if nt.Kind != TokIdent {
			return TVoid, "", isConst, p.errorf("expected struct tag, found %s", nt)
		}
		b, tag = TStruct, nt.Text
	default:
		return TVoid, "", isConst, p.errorf("expected type, found %s", t)
	}
	p.pos++
	for p.accept("const") {
		isConst = true
	}
	return b, tag, isConst, nil
}

// parseTopDecl parses a global variable declaration (possibly several,
// comma-separated) or a function definition.
func (p *Parser) parseTopDecl() ([]Decl, error) {
	base, tag, isConst, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	// "struct Name { ... };" defines a struct type.
	if base == TStruct && p.isPunct("{") {
		sd, err := p.parseStructDef(tag)
		if err != nil {
			return nil, err
		}
		return []Decl{sd}, nil
	}
	ptr := 0
	for p.accept("*") {
		ptr++
	}
	nameTok := p.cur()
	if nameTok.Kind != TokIdent {
		return nil, p.errorf("expected identifier, found %s", nameTok)
	}
	p.pos++
	if p.isPunct("(") {
		fd, err := p.parseFuncRest(TypeSpec{Base: base, Struct: tag, Ptr: ptr}, nameTok.Text)
		if err != nil {
			return nil, err
		}
		return []Decl{fd}, nil
	}
	// Global variable(s).
	var decls []Decl
	name := nameTok.Text
	for {
		vd, err := p.parseVarRest(base, tag, ptr, isConst, name)
		if err != nil {
			return nil, err
		}
		decls = append(decls, vd)
		if !p.accept(",") {
			break
		}
		ptr = 0
		for p.accept("*") {
			ptr++
		}
		nt := p.cur()
		if nt.Kind != TokIdent {
			return nil, p.errorf("expected identifier, found %s", nt)
		}
		p.pos++
		name = nt.Text
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return decls, nil
}

// parseVarRest parses dimensions and initializer of one declarator whose
// name has already been consumed.
func (p *Parser) parseVarRest(base BaseType, tag string, ptr int, isConst bool, name string) (*VarDecl, error) {
	vd := &VarDecl{Name: name, Type: TypeSpec{Base: base, Struct: tag, Ptr: ptr}, Const: isConst}
	for p.accept("[") {
		t := p.cur()
		if t.Kind != TokInt {
			return nil, p.errorf("array dimension must be an integer literal")
		}
		p.pos++
		vd.Type.Dims = append(vd.Type.Dims, int(t.IntVal))
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if p.isPunct("{") {
			p.pos++
			for !p.isPunct("}") {
				e, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				vd.Inits = append(vd.Inits, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			vd.Init = e
		}
	}
	return vd, nil
}

func (p *Parser) parseFuncRest(ret TypeSpec, name string) (*FuncDecl, error) {
	fd := &FuncDecl{Name: name, Ret: ret}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		if p.isKeyword("void") && p.at(1).Kind == TokPunct && p.at(1).Text == ")" {
			p.pos++ // f(void)
		} else {
			for {
				base, tag, _, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				ptr := 0
				for p.accept("*") {
					ptr++
				}
				t := p.cur()
				if t.Kind != TokIdent {
					return nil, p.errorf("expected parameter name, found %s", t)
				}
				p.pos++
				pd := &ParamDecl{Name: t.Text, Type: TypeSpec{Base: base, Struct: tag, Ptr: ptr}}
				// Array suffixes decay to pointers; inner dimensions are
				// kept so multi-dimensional indexing still type-checks.
				for p.accept("[") {
					dim := 0
					if p.cur().Kind == TokInt {
						dim = int(p.cur().IntVal)
						p.pos++
					}
					if err := p.expect("]"); err != nil {
						return nil, err
					}
					if pd.Array {
						pd.Type.Dims = append(pd.Type.Dims, dim)
					}
					pd.Array = true
				}
				fd.Params = append(fd.Params, pd)
				if !p.accept(",") {
					break
				}
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.accept(";") {
		// Forward declaration: Body stays nil.
		return fd, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	p.pos++ // consume "}"
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		p.pos++
		return &EmptyStmt{}, nil
	case p.isTypeKeyword():
		return p.parseDeclStmt()
	case p.isKeyword("if"):
		return p.parseIf()
	case p.isKeyword("while"):
		return p.parseWhile()
	case p.isKeyword("do"):
		return p.parseDoWhile()
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("switch"):
		return p.parseSwitch()
	case p.isKeyword("break"):
		p.pos++
		return &BreakStmt{}, p.expect(";")
	case p.isKeyword("continue"):
		p.pos++
		return &ContinueStmt{}, p.expect(";")
	case p.isKeyword("return"):
		p.pos++
		if p.accept(";") {
			return &ReturnStmt{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: e}, p.expect(";")
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, p.expect(";")
	}
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	base, tag, isConst, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{}
	for {
		ptr := 0
		for p.accept("*") {
			ptr++
		}
		t := p.cur()
		if t.Kind != TokIdent {
			return nil, p.errorf("expected identifier in declaration, found %s", t)
		}
		p.pos++
		vd, err := p.parseVarRest(base, tag, ptr, isConst, t.Text)
		if err != nil {
			return nil, err
		}
		ds.Vars = append(ds.Vars, vd)
		if !p.accept(",") {
			break
		}
	}
	return ds, p.expect(";")
}

func (p *Parser) parseIf() (Stmt, error) {
	p.pos++ // "if"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.accept("else") {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	p.pos++ // "while"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	p.pos++ // "do"
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expect("while"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Body: body, Cond: cond}, p.expect(";")
}

func (p *Parser) parseFor() (Stmt, error) {
	p.pos++ // "for"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ForStmt{}
	if !p.isPunct(";") {
		if p.isTypeKeyword() {
			init, err := p.parseDeclStmt() // consumes ";"
			if err != nil {
				return nil, err
			}
			st.Init = init
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: e}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.pos++
	}
	if !p.isPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	p.pos++ // "switch"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Tag: tag}
	for !p.isPunct("}") {
		var c *SwitchCase
		switch {
		case p.accept("case"):
			neg := p.accept("-")
			t := p.cur()
			var v int64
			switch t.Kind {
			case TokInt, TokChar:
				v = t.IntVal
			default:
				return nil, p.errorf("case value must be an integer or char literal")
			}
			p.pos++
			if neg {
				v = -v
			}
			c = &SwitchCase{Val: v}
		case p.accept("default"):
			c = &SwitchCase{IsDefault: true}
		default:
			return nil, p.errorf("expected case or default, found %s", p.cur())
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		for !p.isPunct("}") && !p.isKeyword("case") && !p.isKeyword("default") {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, s)
		}
		st.Cases = append(st.Cases, c)
	}
	p.pos++ // "}"
	return st, nil
}

// Expression parsing (precedence climbing).

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.pos++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: t.Text, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els}, nil
}

// binary operator precedence levels, loosest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct || !containsStr(binLevels[level], t.Text) {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.Text, X: lhs, Y: rhs}
	}
}

func containsStr(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: t.Text, X: x}, nil
		case "+":
			p.pos++
			return p.parseUnary()
		case "++", "--":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &IncDecExpr{X: x, Op: t.Text}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.at(1).Kind == TokKeyword {
				switch p.at(1).Text {
				case "int", "float", "double", "char":
					p.pos += 2
					spec := TypeSpec{}
					switch p.at(-1).Text {
					case "int":
						spec.Base = TInt
					case "float", "double":
						spec.Base = TFloat
					case "char":
						spec.Base = TChar
					}
					for p.accept("*") {
						spec.Ptr++
					}
					if err := p.expect(")"); err != nil {
						return nil, err
					}
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &CastExpr{To: spec, X: x}, nil
				case "struct":
					// (struct Name *...) pointer cast.
					if p.at(2).Kind == TokIdent {
						spec := TypeSpec{Base: TStruct, Struct: p.at(2).Text}
						p.pos += 3
						for p.accept("*") {
							spec.Ptr++
						}
						if err := p.expect(")"); err != nil {
							return nil, err
						}
						if spec.Ptr == 0 {
							return nil, p.errorf("cast to a bare struct type is not supported")
						}
						x, err := p.parseUnary()
						if err != nil {
							return nil, err
						}
						return &CastExpr{To: spec, X: x}, nil
					}
				}
			}
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("["):
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Idx: idx}
		case p.isPunct(".") || p.isPunct("->"):
			arrow := p.cur().Text == "->"
			p.pos++
			ft := p.cur()
			if ft.Kind != TokIdent {
				return nil, p.errorf("expected field name, found %s", ft)
			}
			p.pos++
			x = &FieldExpr{X: x, Name: ft.Text, Arrow: arrow}
		case p.isPunct("++"):
			p.pos++
			x = &IncDecExpr{X: x, Op: "++", Post: true}
		case p.isPunct("--"):
			p.pos++
			x = &IncDecExpr{X: x, Op: "--", Post: true}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		return &IntLit{Val: t.IntVal}, nil
	case TokFloat:
		p.pos++
		return &FloatLit{Val: t.FloatVal}, nil
	case TokChar:
		p.pos++
		return &CharLit{Val: byte(t.IntVal)}, nil
	case TokString:
		p.pos++
		return &StringLit{Val: t.Text}, nil
	case TokIdent:
		p.pos++
		if p.isPunct("(") {
			p.pos++
			call := &CallExpr{Name: t.Text}
			for !p.isPunct(")") {
				a, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &ParenExpr{X: e}, nil
		}
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}

// parseStructDef parses the braced field list and trailing semicolon of a
// struct definition whose "struct Tag" prefix is already consumed.
func (p *Parser) parseStructDef(tag string) (*StructDecl, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: tag}
	for !p.isPunct("}") {
		base, ftag, _, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		for {
			ptr := 0
			for p.accept("*") {
				ptr++
			}
			t := p.cur()
			if t.Kind != TokIdent {
				return nil, p.errorf("expected field name, found %s", t)
			}
			p.pos++
			fd := &VarDecl{Name: t.Text, Type: TypeSpec{Base: base, Struct: ftag, Ptr: ptr}}
			for p.accept("[") {
				dt := p.cur()
				if dt.Kind != TokInt {
					return nil, p.errorf("field array dimension must be an integer literal")
				}
				p.pos++
				fd.Type.Dims = append(fd.Type.Dims, int(dt.IntVal))
				if err := p.expect("]"); err != nil {
					return nil, err
				}
			}
			sd.Fields = append(sd.Fields, fd)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	p.pos++ // "}"
	return sd, p.expect(";")
}
