package minic_test

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/passes"
)

func TestStructBasics(t *testing.T) {
	wantRet(t, `
	struct Point { int x; int y; };
	int main() {
		struct Point p;
		p.x = 3;
		p.y = 4;
		return p.x * p.x + p.y * p.y;
	}`, 25)
}

func TestStructMixedFieldTypes(t *testing.T) {
	wantRet(t, `
	struct Rec { char tag; int count; float weight; };
	int main() {
		struct Rec r;
		r.tag = 'z';
		r.count = 10;
		r.weight = 2.5;
		return r.tag + r.count + (int)(r.weight * 2.0);
	}`, int64('z')+10+5)
}

func TestStructPointerArrow(t *testing.T) {
	wantRet(t, `
	struct Point { int x; int y; };
	void move(struct Point *p, int dx, int dy) {
		p->x += dx;
		p->y += dy;
	}
	int main() {
		struct Point p;
		p.x = 1;
		p.y = 2;
		move(&p, 10, 20);
		return p.x * 100 + p.y;
	}`, 1122)
}

func TestStructArrays(t *testing.T) {
	wantRet(t, `
	struct Point { int x; int y; };
	int main() {
		struct Point pts[5];
		for (int i = 0; i < 5; i++) {
			pts[i].x = i;
			pts[i].y = i * i;
		}
		int s = 0;
		for (int i = 0; i < 5; i++) s += pts[i].x + pts[i].y;
		return s;
	}`, 10+30)
}

func TestStructMemberArray(t *testing.T) {
	wantRet(t, `
	struct Buf { int len; int data[8]; };
	int main() {
		struct Buf b;
		b.len = 0;
		for (int i = 0; i < 8; i++) {
			b.data[i] = i * 3;
			b.len++;
		}
		int s = 0;
		for (int i = 0; i < b.len; i++) s += b.data[i];
		return s * 10 + b.len;
	}`, 84*10+8)
}

func TestNestedStructs(t *testing.T) {
	wantRet(t, `
	struct Inner { int v; };
	struct Outer { struct Inner a; struct Inner b; };
	int main() {
		struct Outer o;
		o.a.v = 7;
		o.b.v = 9;
		return o.a.v * o.b.v;
	}`, 63)
}

func TestLinkedListViaSelfPointer(t *testing.T) {
	wantRet(t, `
	struct Node { int val; struct Node *next; };
	int main() {
		struct Node a;
		struct Node b;
		struct Node c;
		a.val = 1; a.next = &b;
		b.val = 2; b.next = &c;
		c.val = 3; c.next = (struct Node*)0;
		int s = 0;
		struct Node *cur = &a;
		while (cur) {
			s = s * 10 + cur->val;
			cur = cur->next;
		}
		return s;
	}`, 123)
}

func TestStructGlobal(t *testing.T) {
	wantRet(t, `
	struct Counter { int hits; int misses; };
	struct Counter g;
	void hit() { g.hits++; }
	void miss() { g.misses++; }
	int main() {
		hit(); hit(); hit(); miss();
		return g.hits * 10 + g.misses;
	}`, 31)
}

func TestStructErrors(t *testing.T) {
	bad := []struct {
		name, src, wantErr string
	}{
		{"unknown struct", `int main() { struct Nope n; return 0; }`, "unknown struct"},
		{"unknown field", `struct P { int x; };
			int main() { struct P p; p.z = 1; return 0; }`, "no field"},
		{"by-value param", `struct P { int x; };
			int f(struct P p) { return 0; }
			int main() { return 0; }`, "passed by pointer"},
		{"by-value return", `struct P { int x; };
			struct P f() { struct P p; return p; }
			int main() { return 0; }`, "returned by pointer"},
		{"recursive by value", `struct P { struct P inner; };
			int main() { return 0; }`, "must be a pointer"},
		{"duplicate field", `struct P { int x; int x; };
			int main() { return 0; }`, "duplicate field"},
		{"empty struct", `struct P { };
			int main() { return 0; }`, "no fields"},
		{"whole-struct assign", `struct P { int x; };
			int main() { struct P a; struct P b; a = b; return 0; }`, ""},
		{"struct as value", `struct P { int x; };
			int main() { struct P a; return a; }`, ""},
		{"dot on non-struct", `int main() { int x; return x.y; }`, "non-struct"},
	}
	for _, tc := range bad {
		_, err := minic.CompileSource(tc.src, "bad")
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestStructPrintRoundTrip(t *testing.T) {
	src := `
	struct Pair { int a; int b; };
	struct Box { struct Pair p; int tags[4]; };
	int sum(struct Box *bx) {
		int s = bx->p.a + bx->p.b;
		for (int i = 0; i < 4; i++) s += bx->tags[i];
		return s;
	}
	int main() {
		struct Box b;
		b.p.a = 1;
		b.p.b = 2;
		for (int i = 0; i < 4; i++) b.tags[i] = i;
		return sum(&b);
	}`
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := minic.Print(f)
	f2, err := minic.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if p2 := minic.Print(f2); p2 != printed {
		t.Fatalf("printer not idempotent:\n%s\nvs\n%s", printed, p2)
	}
	m, err := minic.Compile(f2, "rt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 9 {
		t.Fatalf("ret = %d, want 9", res.Ret)
	}
}

func TestStructSemanticsUnderOptimizationAndObfuscation(t *testing.T) {
	src := `
	struct Acc { int lo; int hi; };
	void add(struct Acc *a, int v) {
		a->lo += v;
		if (a->lo >= 1000) { a->hi++; a->lo -= 1000; }
	}
	int main() {
		struct Acc a;
		a.lo = 0;
		a.hi = 0;
		for (int i = 0; i < 100; i++) add(&a, i * 7);
		return a.hi * 10000 + a.lo;
	}`
	base, err := minic.CompileSource(src, "s")
	if err != nil {
		t.Fatal(err)
	}
	want, err := interp.Run(base, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []passes.Level{passes.O1, passes.O2, passes.O3} {
		m, _ := minic.CompileSource(src, "s")
		if err := passes.Optimize(m, lvl); err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		got, err := interp.Run(m, interp.Options{})
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		if got.Ret != want.Ret {
			t.Fatalf("%s changed struct semantics: %d -> %d", lvl, want.Ret, got.Ret)
		}
	}
}
