package minic_test

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/minic"
)

// run compiles and executes src, returning the result.
func run(t *testing.T, src string) *interp.Result {
	t.Helper()
	mod, err := minic.CompileSource(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(mod, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v\nIR:\n%s", err, mod.String())
	}
	return res
}

func wantRet(t *testing.T, src string, want int64) {
	t.Helper()
	res := run(t, src)
	if res.Ret != want {
		t.Fatalf("ret = %d, want %d", res.Ret, want)
	}
}

func wantOutput(t *testing.T, src, want string) {
	t.Helper()
	res := run(t, src)
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func TestReturnConstant(t *testing.T) {
	wantRet(t, "int main() { return 42; }", 42)
}

func TestArithmetic(t *testing.T) {
	wantRet(t, "int main() { return 2 + 3 * 4 - 10 / 2; }", 9)
	wantRet(t, "int main() { return 17 % 5; }", 2)
	wantRet(t, "int main() { return (1 << 6) | 3; }", 67)
	wantRet(t, "int main() { return 255 & 15; }", 15)
	wantRet(t, "int main() { return 12 ^ 10; }", 6)
	wantRet(t, "int main() { return -8 >> 1; }", -4)
	wantRet(t, "int main() { return ~0; }", -1)
	wantRet(t, "int main() { return -(5); }", -5)
}

func TestVariablesAndAssignment(t *testing.T) {
	wantRet(t, "int main() { int x = 5; int y; y = x + 2; return y; }", 7)
	wantRet(t, "int main() { int x = 10; x += 5; x -= 3; x *= 2; x /= 4; return x; }", 6)
	wantRet(t, "int main() { int x = 7; x %= 4; return x; }", 3)
	wantRet(t, "int main() { int x = 6; x &= 3; x |= 8; x ^= 1; return x; }", 11)
	wantRet(t, "int main() { int x = 1; x <<= 4; x >>= 2; return x; }", 4)
}

func TestIncDec(t *testing.T) {
	wantRet(t, "int main() { int x = 5; int y = x++; return x * 10 + y; }", 65)
	wantRet(t, "int main() { int x = 5; int y = ++x; return x * 10 + y; }", 66)
	wantRet(t, "int main() { int x = 5; int y = x--; return x * 10 + y; }", 45)
	wantRet(t, "int main() { int x = 5; int y = --x; return x * 10 + y; }", 44)
}

func TestIfElse(t *testing.T) {
	wantRet(t, "int main() { if (3 > 2) return 1; else return 2; }", 1)
	wantRet(t, "int main() { if (2 > 3) return 1; else return 2; }", 2)
	wantRet(t, "int main() { int x = 0; if (1) x = 5; return x; }", 5)
	wantRet(t, `int main() {
		int a = 10;
		if (a > 100) return 1;
		else if (a > 5) return 2;
		else return 3;
	}`, 2)
}

func TestWhileLoop(t *testing.T) {
	wantRet(t, `int main() {
		int i = 0; int s = 0;
		while (i < 10) { s += i; i++; }
		return s;
	}`, 45)
}

func TestForLoop(t *testing.T) {
	wantRet(t, `int main() {
		int s = 0;
		for (int i = 1; i <= 10; i++) s += i;
		return s;
	}`, 55)
	wantRet(t, `int main() {
		int s = 0; int i = 0;
		for (; i < 5;) { s += 2; i++; }
		return s;
	}`, 10)
}

func TestDoWhile(t *testing.T) {
	wantRet(t, `int main() {
		int i = 10; int n = 0;
		do { n++; i++; } while (i < 5);
		return n;
	}`, 1)
}

func TestBreakContinue(t *testing.T) {
	wantRet(t, `int main() {
		int s = 0;
		for (int i = 0; i < 100; i++) {
			if (i == 5) break;
			if (i % 2 == 0) continue;
			s += i;
		}
		return s;
	}`, 4) // 1 + 3
}

func TestNestedLoops(t *testing.T) {
	wantRet(t, `int main() {
		int c = 0;
		for (int i = 0; i < 4; i++)
			for (int j = 0; j < 3; j++)
				c++;
		return c;
	}`, 12)
}

func TestSwitch(t *testing.T) {
	src := `int classify(int x) {
		switch (x) {
		case 1: return 10;
		case 2: return 20;
		case 3:
		case 4: return 34;
		default: return -1;
		}
	}
	int main() {
		return classify(1)*1000 + classify(3)*10 + classify(9);
	}`
	wantRet(t, src, 10000+340-1)
}

func TestSwitchFallthrough(t *testing.T) {
	wantRet(t, `int main() {
		int r = 0;
		switch (2) {
		case 1: r += 1;
		case 2: r += 2;
		case 3: r += 4;
			break;
		case 4: r += 8;
		}
		return r;
	}`, 6)
}

func TestFunctionsAndRecursion(t *testing.T) {
	wantRet(t, `
	int fib(int n) {
		if (n < 2) return n;
		return fib(n-1) + fib(n-2);
	}
	int main() { return fib(12); }`, 144)
}

func TestMutualRecursion(t *testing.T) {
	wantRet(t, `
	int isOdd(int n);
	int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
	int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
	int main() { return isEven(10)*10 + isOdd(7); }`, 11)
}

func TestArrays(t *testing.T) {
	wantRet(t, `int main() {
		int a[5];
		for (int i = 0; i < 5; i++) a[i] = i * i;
		int s = 0;
		for (int i = 0; i < 5; i++) s += a[i];
		return s;
	}`, 30)
}

func TestArrayInitializer(t *testing.T) {
	wantRet(t, `int main() {
		int a[4] = {3, 1, 4, 1};
		return a[0]*1000 + a[1]*100 + a[2]*10 + a[3];
	}`, 3141)
}

func TestMultiDimArray(t *testing.T) {
	wantRet(t, `int main() {
		int m[3][3];
		for (int i = 0; i < 3; i++)
			for (int j = 0; j < 3; j++)
				m[i][j] = i * 3 + j;
		int tr = 0;
		for (int i = 0; i < 3; i++) tr += m[i][i];
		return tr;
	}`, 12)
}

func TestArrayParameter(t *testing.T) {
	wantRet(t, `
	int sum(int a[], int n) {
		int s = 0;
		for (int i = 0; i < n; i++) s += a[i];
		return s;
	}
	int main() {
		int a[4] = {1, 2, 3, 4};
		return sum(a, 4);
	}`, 10)
}

func TestMatrixParameter(t *testing.T) {
	wantRet(t, `
	int diag(int m[][3], int n) {
		int s = 0;
		for (int i = 0; i < n; i++) s += m[i][i];
		return s;
	}
	int main() {
		int m[3][3] = {1, 0, 0, 0, 2, 0, 0, 0, 3};
		return diag(m, 3);
	}`, 6)
}

func TestPointers(t *testing.T) {
	wantRet(t, `int main() {
		int x = 10;
		int *p = &x;
		*p = 20;
		return x + *p;
	}`, 40)
	wantRet(t, `
	void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
	int main() {
		int x = 1; int y = 2;
		swap(&x, &y);
		return x * 10 + y;
	}`, 21)
}

func TestPointerArithmetic(t *testing.T) {
	wantRet(t, `int main() {
		int a[3] = {7, 8, 9};
		int *p = a;
		p++;
		return *p + *(p + 1);
	}`, 17)
}

func TestGlobals(t *testing.T) {
	wantRet(t, `
	int counter = 100;
	int table[3] = {5, 6, 7};
	void bump() { counter += table[1]; }
	int main() { bump(); bump(); return counter; }`, 112)
}

func TestFloats(t *testing.T) {
	wantRet(t, `int main() {
		float x = 2.5;
		float y = x * 4.0;
		return (int)y;
	}`, 10)
	wantRet(t, `int main() {
		float s = 0.0;
		for (int i = 1; i <= 4; i++) s += 1.0 / i;
		return (int)(s * 1000.0);
	}`, 2083)
}

func TestFloatIntMixing(t *testing.T) {
	wantRet(t, "int main() { return (int)(3 / 2.0 * 4); }", 6)
	wantRet(t, "int main() { float f = 7; int i = f + 0.5; return i; }", 7)
}

func TestMathBuiltins(t *testing.T) {
	wantRet(t, "int main() { return (int)sqrt(144.0); }", 12)
	wantRet(t, "int main() { return (int)fabs(-3.5 * 2.0); }", 7)
	wantRet(t, "int main() { return (int)pow(2.0, 10.0); }", 1024)
	wantRet(t, "int main() { return abs(-42); }", 42)
	wantRet(t, "int main() { return (int)floor(3.9); }", 3)
}

func TestChars(t *testing.T) {
	wantRet(t, "int main() { char c = 'A'; return c + 1; }", 66)
	wantRet(t, `int main() {
		char s[6];
		s[0] = 'h'; s[1] = 'i'; s[2] = 0;
		int n = 0;
		while (s[n]) n++;
		return n;
	}`, 2)
}

func TestLogicalOps(t *testing.T) {
	wantRet(t, "int main() { return (1 && 2) + (0 && 1)*10 + (0 || 3)*100 + (0 || 0)*1000; }", 101)
	// Short-circuit: the second operand must not run.
	wantRet(t, `
	int g = 0;
	int bump() { g = 1; return 1; }
	int main() {
		int r = 0 && bump();
		return g * 10 + r;
	}`, 0)
	wantRet(t, `
	int g = 0;
	int bump() { g = 1; return 1; }
	int main() {
		int r = 1 || bump();
		return g * 10 + r;
	}`, 1)
}

func TestTernary(t *testing.T) {
	wantRet(t, "int main() { int x = 7; return x > 5 ? 100 : 200; }", 100)
	wantRet(t, "int main() { int x = 3; return x > 5 ? 100 : 200; }", 200)
	wantRet(t, "int main() { return 1 ? 2 ? 3 : 4 : 5; }", 3)
}

func TestPrint(t *testing.T) {
	wantOutput(t, `int main() { print(42); return 0; }`, "42\n")
	wantOutput(t, `int main() { prints("hello"); return 0; }`, "hello")
	wantOutput(t, `int main() { printc('x'); printc('\n'); return 0; }`, "x\n")
}

func TestInput(t *testing.T) {
	mod, err := minic.CompileSource(`int main() {
		int a = input();
		int b = input();
		return a * b;
	}`, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(mod, interp.Options{Input: []int64{6, 7}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ret != 42 {
		t.Fatalf("ret = %d, want 42", res.Ret)
	}
}

func TestCommentsAndPreprocessor(t *testing.T) {
	wantRet(t, `
	#include <stdio.h>
	// line comment
	/* block
	   comment */
	int main() { return 5; } // trailing`, 5)
}

func TestVoidFunction(t *testing.T) {
	wantRet(t, `
	int g;
	void set(int v) { g = v; return; }
	void set2(int v) { g = v; }
	int main() { set(3); set2(g + 4); return g; }`, 7)
}

func TestImplicitReturn(t *testing.T) {
	wantRet(t, "int main() { int x = 5; }", 0)
}

func TestDeadCodeAfterReturn(t *testing.T) {
	wantRet(t, `int main() {
		return 1;
		return 2;
	}`, 1)
}

func TestConstGlobal(t *testing.T) {
	wantRet(t, `
	const int N = 6;
	int main() { return N * 7; }`, 42)
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"int main() { return x; }",                // undefined variable
		"int main() { foo(); }",                   // undefined function
		"int main() { break; }",                   // break outside loop
		"int main() { continue; }",                // continue outside loop
		"int f() { return 1; }",                   // no main
		"int main() { int x = 1; int",             // truncated
		"int main() { return 1 +; }",              // bad expression
		"int main() { 3 = 4; }",                   // not an lvalue
		"int main() { int a[2]; return a[0](); }", // parse error
		"void main2(; }",                          // garbage
		"int main() { prints(1, 2); }",            // wrong arity
	}
	for _, src := range bad {
		if _, err := minic.CompileSource(src, "bad"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
	int g = 3;
	int fact(int n) {
		if (n <= 1) return 1;
		return n * fact(n - 1);
	}
	int main() {
		int a[3] = {1, 2, 3};
		int s = 0;
		for (int i = 0; i < 3; i++) {
			s += a[i] * fact(i + 1);
		}
		while (s > 100) { s -= 10; }
		do { s++; } while (s < 0);
		switch (s % 3) {
		case 0: s += g; break;
		default: s -= g;
		}
		float f = 1.5;
		char c = 'z';
		s += (int)f + c - c;
		return s > 0 && s < 1000 ? s : -s;
	}`
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := minic.Print(f)
	f2, err := minic.Parse(printed)
	if err != nil {
		t.Fatalf("reparse printed source: %v\n%s", err, printed)
	}
	printed2 := minic.Print(f2)
	if printed != printed2 {
		t.Fatalf("printer not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
	// Behaviour must match between original and round-tripped source.
	m1, err := minic.Compile(f, "a")
	if err != nil {
		t.Fatalf("compile original: %v", err)
	}
	m2, err := minic.Compile(f2, "b")
	if err != nil {
		t.Fatalf("compile roundtrip: %v", err)
	}
	r1, err := interp.Run(m1, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(m2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ret != r2.Ret || r1.Output != r2.Output {
		t.Fatalf("round trip changed behaviour: %d/%q vs %d/%q", r1.Ret, r1.Output, r2.Ret, r2.Output)
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := minic.LexAll(`int x = 0x10; float f = 1.5e2; char c = '\n'; x <<= 2;`)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Text)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "<<=") {
		t.Fatalf("compound operator not lexed as one token: %s", joined)
	}
	// 1.5e2 must be a float token with value 150.
	found := false
	for _, tk := range toks {
		if tk.Kind == minic.TokFloat && tk.FloatVal == 150 {
			found = true
		}
	}
	if !found {
		t.Fatal("scientific float literal not decoded")
	}
}

func TestStepCounting(t *testing.T) {
	res := run(t, `int main() {
		int s = 0;
		for (int i = 0; i < 100; i++) s += i;
		return s;
	}`)
	if res.Steps < 100 {
		t.Fatalf("steps = %d, expected at least one per loop iteration", res.Steps)
	}
}
