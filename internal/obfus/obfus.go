// Package obfus implements the O-LLVM-style IR obfuscation passes used as
// evaders in the paper's games: instruction substitution (sub), bogus
// control flow (bcf) and control-flow flattening (fla), plus the combined
// pass (ollvm) that applies all three.
package obfus

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Apply runs the named obfuscation over every defined function of m,
// drawing randomness from rng. Known names: "sub", "bcf", "fla", "ollvm".
func Apply(m *ir.Module, name string, rng *rand.Rand) error {
	switch name {
	case "sub":
		forEachDef(m, func(f *ir.Function) { Substitute(f, rng, 1) })
	case "bcf":
		ensureOpaqueGlobals(m)
		forEachDef(m, func(f *ir.Function) { BogusControlFlow(f, rng, 0.3) })
	case "fla":
		forEachDef(m, func(f *ir.Function) { Flatten(f, rng) })
	case "ollvm":
		// The combined pipeline stacks all three passes, with the heavier
		// settings O-LLVM applies when everything is enabled (two
		// substitution rounds, denser bogus flow). The flattening
		// dispatcher then multiplies the cost of every bogus block.
		ensureOpaqueGlobals(m)
		forEachDef(m, func(f *ir.Function) {
			Substitute(f, rng, 2)
			BogusControlFlow(f, rng, 0.5)
			Flatten(f, rng)
			BogusControlFlow(f, rng, 0.3)
		})
	default:
		return fmt.Errorf("obfus: unknown transformation %q", name)
	}
	if err := m.Verify(); err != nil {
		return fmt.Errorf("obfus: %s produced invalid IR: %w", name, err)
	}
	return nil
}

// Names lists the IR-level obfuscations, in the paper's order.
func Names() []string { return []string{"bcf", "fla", "sub", "ollvm"} }

func forEachDef(m *ir.Module, fn func(*ir.Function)) {
	for _, f := range m.Functions {
		if !f.IsDecl() {
			fn(f)
		}
	}
}

// opaque globals backing the always-true predicates of bcf. Loading them
// keeps SCCP from folding the predicate — exactly why the paper finds bcf
// "cannot be easily optimized".
const (
	opaqueXName = ".bcf_x"
	opaqueYName = ".bcf_y"
)

func ensureOpaqueGlobals(m *ir.Module) {
	if m.Global(opaqueXName) == nil {
		m.AddGlobal(&ir.Global{Name: opaqueXName, Elem: ir.I64})
	}
	if m.Global(opaqueYName) == nil {
		m.AddGlobal(&ir.Global{Name: opaqueYName, Elem: ir.I64})
	}
}
