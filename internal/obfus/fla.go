package obfus

import (
	"math/rand"

	"repro/internal/ir"
)

// Flatten implements O-LLVM's control-flow flattening: every basic block
// becomes a case of a switch inside a dispatch loop, and a state variable
// selects the next block to run. Before restructuring, SSA values that
// cross blocks are demoted to stack slots (reg2mem) so that the arbitrary
// reordering of blocks cannot break dominance.
func Flatten(f *ir.Function, rng *rand.Rand) bool {
	if len(f.Blocks) < 2 {
		return false
	}
	if t := f.Entry().Term(); t != nil && t.Op == ir.OpRet {
		return false
	}
	hoistAllocas(f)
	DemoteRegisters(f)

	entry := f.Entry()
	cases := append([]*ir.Block(nil), f.Blocks[1:]...)
	rng.Shuffle(len(cases), func(i, j int) { cases[i], cases[j] = cases[j], cases[i] })

	// State variable.
	state := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PtrTo(ir.I64), AllocaTy: ir.I64}
	entry.InsertBefore(0, state)

	ids := make(map[*ir.Block]int64, len(cases))
	perm := rng.Perm(len(cases))
	for i, b := range cases {
		ids[b] = int64(perm[i]*7 + 11) // scrambled, distinct
	}

	dispatch := f.NewBlock("dispatch")

	// Rewrite terminators to state updates.
	retarget := func(b *ir.Block) {
		term := b.Term()
		switch term.Op {
		case ir.OpRet, ir.OpUnreachable:
			return
		case ir.OpBr:
			b.Remove(term)
			bd := ir.NewBuilder(b)
			bd.Store(ir.ConstInt(ir.I64, ids[term.Blocks[0]]), state)
			bd.Br(dispatch)
		case ir.OpCondBr:
			cond := term.Args[0]
			b.Remove(term)
			bd := ir.NewBuilder(b)
			sel := bd.Select(cond,
				ir.ConstInt(ir.I64, ids[term.Blocks[0]]),
				ir.ConstInt(ir.I64, ids[term.Blocks[1]]))
			bd.Store(sel, state)
			bd.Br(dispatch)
		case ir.OpSwitch:
			tag := term.Args[0]
			vals := append([]int64(nil), term.SwitchVals...)
			dests := append([]*ir.Block(nil), term.Blocks...)
			b.Remove(term)
			bd := ir.NewBuilder(b)
			var id ir.Value = ir.ConstInt(ir.I64, ids[dests[0]]) // default
			for i, v := range vals {
				cmp := bd.ICmp(ir.CmpEQ, tag, ir.ConstInt(tag.Type(), v))
				id = bd.Select(cmp, ir.ConstInt(ir.I64, ids[dests[i+1]]), id)
			}
			bd.Store(id, state)
			bd.Br(dispatch)
		}
	}
	retarget(entry)
	for _, b := range cases {
		retarget(b)
	}

	// Dispatcher: load the state and fan out. The first case doubles as
	// the (unreachable) switch default.
	bd := ir.NewBuilder(dispatch)
	s := bd.Load(state)
	vals := make([]int64, 0, len(cases))
	dests := make([]*ir.Block, 0, len(cases))
	for _, b := range cases {
		vals = append(vals, ids[b])
		dests = append(dests, b)
	}
	bd.Switch(s, dests[0], vals[1:], dests[1:])

	// Physical order: entry, dispatcher, shuffled cases.
	f.Blocks = append([]*ir.Block{entry, dispatch}, cases...)
	return true
}

// hoistAllocas moves every alloca to the head of the entry block. The
// front end and the passes only create once-executed (static) allocas, but
// a prior transformation (e.g. bcf splitting the entry) may have left them
// in blocks that will not dominate the flattened dispatcher cases.
func hoistAllocas(f *ir.Function) {
	entry := f.Entry()
	for _, b := range f.Blocks {
		if b == entry {
			continue
		}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				in.Parent = entry
				entry.InsertBefore(0, in)
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}

// DemoteRegisters rewrites the function so that no SSA value flows between
// basic blocks: every cross-block value is spilled to a stack slot after
// its definition and reloaded before each use, and phi nodes become stores
// in their predecessors. This is LLVM's reg2mem, the enabling step for
// flattening.
func DemoteRegisters(f *ir.Function) {
	entry := f.Entry()

	// Pass 1: spill values used outside their defining block (or by any
	// phi — phi operands must be materialized in the predecessor).
	type spill struct {
		def  *ir.Instr
		slot *ir.Instr
	}
	var spills []spill
	needSpill := func(def *ir.Instr) bool {
		if !def.HasResult() || def.Op == ir.OpAlloca {
			return false
		}
		used := false
		f.ForEachInstr(func(u *ir.Instr) {
			if used {
				return
			}
			for _, a := range u.Args {
				if a == ir.Value(def) && (u.Parent != def.Parent || u.Op == ir.OpPhi) {
					used = true
				}
			}
		})
		return used
	}
	var defs []*ir.Instr
	f.ForEachInstr(func(in *ir.Instr) { defs = append(defs, in) })
	for _, def := range defs {
		if !needSpill(def) {
			continue
		}
		slot := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PtrTo(def.Type()), AllocaTy: def.Type()}
		entry.InsertBefore(0, slot)
		spills = append(spills, spill{def, slot})
	}
	for _, sp := range spills {
		// Store right after the definition (after the phi prefix when the
		// definition is a phi).
		b := sp.def.Parent
		pos := indexOf(b, sp.def) + 1
		if sp.def.Op == ir.OpPhi {
			pos = b.FirstNonPhi()
		}
		st := &ir.Instr{Op: ir.OpStore, Ty: ir.Void, Args: []ir.Value{sp.def, sp.slot}}
		b.InsertBefore(pos, st)

		// Reload before each outside/phi use.
		for _, u := range f.Users(sp.def) {
			if u == st {
				continue
			}
			if u.Op == ir.OpPhi {
				// Load at the end of each incoming block that carries def.
				for i, a := range u.Args {
					if a != ir.Value(sp.def) {
						continue
					}
					pred := u.Blocks[i]
					ld := &ir.Instr{Op: ir.OpLoad, Ty: sp.def.Type(), Args: []ir.Value{sp.slot}}
					pred.InsertBeforeTerm(ld)
					u.Args[i] = ld
				}
				continue
			}
			if u.Parent == sp.def.Parent {
				continue
			}
			ld := &ir.Instr{Op: ir.OpLoad, Ty: sp.def.Type(), Args: []ir.Value{sp.slot}}
			u.Parent.InsertBefore(indexOf(u.Parent, u), ld)
			u.ReplaceUses(sp.def, ld)
		}
	}

	// Pass 2: demote the phis themselves. Incoming values are now either
	// constants/params/globals or loads materialized inside the incoming
	// block, so storing them at the end of that block is always legal.
	for _, b := range f.Blocks {
		phis := b.Phis()
		if len(phis) == 0 {
			continue
		}
		for _, phi := range phis {
			slot := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PtrTo(phi.Type()), AllocaTy: phi.Type()}
			entry.InsertBefore(0, slot)
			seen := make(map[*ir.Block]bool)
			for i, pred := range phi.Blocks {
				if seen[pred] {
					continue // duplicate edges carry the same value
				}
				seen[pred] = true
				st := &ir.Instr{Op: ir.OpStore, Ty: ir.Void, Args: []ir.Value{phi.Args[i], slot}}
				pred.InsertBeforeTerm(st)
			}
			ld := &ir.Instr{Op: ir.OpLoad, Ty: phi.Type(), Args: []ir.Value{slot}}
			b.InsertBefore(b.FirstNonPhi(), ld)
			f.ReplaceUses(phi, ld)
		}
		for _, phi := range phis {
			b.Remove(phi)
		}
	}
}

func indexOf(b *ir.Block, in *ir.Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return len(b.Instrs)
}
