package obfus

import (
	"math/rand"

	"repro/internal/ir"
)

// Substitute is O-LLVM's instruction-substitution pass: integer add, sub,
// and, or and xor instructions are replaced by longer, semantically
// equivalent sequences (mixed boolean-arithmetic identities and
// random-constant detours). rounds controls how many times the whole
// function is rewritten; each round can expand the previous round's output.
func Substitute(f *ir.Function, rng *rand.Rand, rounds int) bool {
	changed := false
	for r := 0; r < rounds; r++ {
		for _, b := range f.Blocks {
			// Iterate over a snapshot: expansions insert instructions.
			snapshot := append([]*ir.Instr(nil), b.Instrs...)
			for _, in := range snapshot {
				if !in.Ty.IsInt() || in.Ty.Bits < 8 {
					continue
				}
				var repl ir.Value
				switch in.Op {
				case ir.OpAdd:
					repl = expandAdd(b, in, rng)
				case ir.OpSub:
					repl = expandSub(b, in, rng)
				case ir.OpAnd:
					repl = expandAnd(b, in)
				case ir.OpOr:
					repl = expandOr(b, in)
				case ir.OpXor:
					repl = expandXor(b, in)
				}
				if repl != nil {
					f.ReplaceUses(in, repl)
					b.Remove(in)
					changed = true
				}
			}
		}
	}
	return changed
}

// insertion helper: emits instructions immediately before pos in its block.
type inserter struct {
	b   *ir.Block
	idx int
}

func before(b *ir.Block, pos *ir.Instr) *inserter {
	for i, in := range b.Instrs {
		if in == pos {
			return &inserter{b: b, idx: i}
		}
	}
	return &inserter{b: b, idx: len(b.Instrs)}
}

func (ins *inserter) emit(op ir.Opcode, ty *ir.Type, args ...ir.Value) *ir.Instr {
	in := &ir.Instr{Op: op, Ty: ty, Args: args}
	ins.b.InsertBefore(ins.idx, in)
	ins.idx++
	return in
}

// expandAdd rewrites a+b using one of O-LLVM's four encodings.
func expandAdd(b *ir.Block, in *ir.Instr, rng *rand.Rand) ir.Value {
	x, y := in.Args[0], in.Args[1]
	ty := in.Ty
	ins := before(b, in)
	switch rng.Intn(4) {
	case 0: // a - (-b)
		neg := ins.emit(ir.OpSub, ty, ir.ConstInt(ty, 0), y)
		return ins.emit(ir.OpSub, ty, x, neg)
	case 1: // -(-a - b)
		na := ins.emit(ir.OpSub, ty, ir.ConstInt(ty, 0), x)
		t := ins.emit(ir.OpSub, ty, na, y)
		return ins.emit(ir.OpSub, ty, ir.ConstInt(ty, 0), t)
	case 2: // (a ^ b) + 2*(a & b)
		xor := ins.emit(ir.OpXor, ty, x, y)
		and := ins.emit(ir.OpAnd, ty, x, y)
		dbl := ins.emit(ir.OpShl, ty, and, ir.ConstInt(ty, 1))
		return ins.emit(ir.OpAdd, ty, xor, dbl)
	default: // a + r + b - r
		r := ir.ConstInt(ty, int64(rng.Intn(2048)+1))
		t1 := ins.emit(ir.OpAdd, ty, x, r)
		t2 := ins.emit(ir.OpAdd, ty, t1, y)
		return ins.emit(ir.OpSub, ty, t2, r)
	}
}

// expandSub rewrites a-b.
func expandSub(b *ir.Block, in *ir.Instr, rng *rand.Rand) ir.Value {
	x, y := in.Args[0], in.Args[1]
	// Skip canonical negation (0-b): rewriting it loops forever.
	if c, ok := x.(*ir.Const); ok && c.I == 0 {
		return nil
	}
	ty := in.Ty
	ins := before(b, in)
	switch rng.Intn(3) {
	case 0: // a + (-b)
		neg := ins.emit(ir.OpSub, ty, ir.ConstInt(ty, 0), y)
		return ins.emit(ir.OpAdd, ty, x, neg)
	case 1: // (a ^ b) - 2*(~a & b)
		xor := ins.emit(ir.OpXor, ty, x, y)
		na := ins.emit(ir.OpXor, ty, x, ir.ConstInt(ty, -1))
		and := ins.emit(ir.OpAnd, ty, na, y)
		dbl := ins.emit(ir.OpShl, ty, and, ir.ConstInt(ty, 1))
		return ins.emit(ir.OpSub, ty, xor, dbl)
	default: // a - r - b + r
		r := ir.ConstInt(ty, int64(rng.Intn(2048)+1))
		t1 := ins.emit(ir.OpSub, ty, x, r)
		t2 := ins.emit(ir.OpSub, ty, t1, y)
		return ins.emit(ir.OpAdd, ty, t2, r)
	}
}

// expandAnd rewrites a&b as (a ^ ~b) & a.
func expandAnd(b *ir.Block, in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	ty := in.Ty
	ins := before(b, in)
	nb := ins.emit(ir.OpXor, ty, y, ir.ConstInt(ty, -1))
	xor := ins.emit(ir.OpXor, ty, x, nb)
	return ins.emit(ir.OpAnd, ty, xor, x)
}

// expandOr rewrites a|b as (a & b) | (a ^ b).
func expandOr(b *ir.Block, in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	ty := in.Ty
	ins := before(b, in)
	and := ins.emit(ir.OpAnd, ty, x, y)
	xor := ins.emit(ir.OpXor, ty, x, y)
	return ins.emit(ir.OpOr, ty, and, xor)
}

// expandXor rewrites a^b as (~a & b) | (a & ~b).
func expandXor(b *ir.Block, in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	// Skip canonical not (x ^ -1): its expansion contains another not.
	if c, ok := y.(*ir.Const); ok && c.I == -1 {
		return nil
	}
	if c, ok := x.(*ir.Const); ok && c.I == -1 {
		return nil
	}
	ty := in.Ty
	ins := before(b, in)
	na := ins.emit(ir.OpXor, ty, x, ir.ConstInt(ty, -1))
	nb := ins.emit(ir.OpXor, ty, y, ir.ConstInt(ty, -1))
	l := ins.emit(ir.OpAnd, ty, na, y)
	r := ins.emit(ir.OpAnd, ty, x, nb)
	return ins.emit(ir.OpOr, ty, l, r)
}
