package obfus

import (
	"math/rand"

	"repro/internal/ir"
)

// BogusControlFlow implements O-LLVM's bcf pass. Selected blocks are split
// in two; between the halves an opaque predicate — always true, but built
// from loads of module globals so no intraprocedural analysis can fold it —
// conditionally branches to a bogus block full of junk computation that
// jumps back into the real code. The junk never executes, yet it reshapes
// both the CFG and the opcode histogram.
//
// prob is the per-block probability of receiving a bogus detour; at least
// one block per function is always transformed.
func BogusControlFlow(f *ir.Function, rng *rand.Rand, prob float64) bool {
	return bogusControlFlow(f, rng, prob, true)
}

// BogusControlFlowFoldable is the ablation variant of bcf used by the
// benchmark harness: the predicate guarding the bogus path is a plain
// constant-true comparison instead of an opaque global-based one, so SCCP
// folds it and -O3 removes the detour entirely. Comparing the two variants
// quantifies how much of bcf's normalization resistance comes from the
// opacity of its predicates.
func BogusControlFlowFoldable(f *ir.Function, rng *rand.Rand, prob float64) bool {
	return bogusControlFlow(f, rng, prob, false)
}

func bogusControlFlow(f *ir.Function, rng *rand.Rand, prob float64, opaque bool) bool {
	if f.Mod == nil || f.Mod.Global(opaqueXName) == nil {
		ensureOpaqueGlobals(f.Mod)
	}
	// Snapshot: we add blocks while iterating.
	blocks := append([]*ir.Block(nil), f.Blocks...)
	changed := false
	for i, b := range blocks {
		mustPick := !changed && i == len(blocks)-1
		if !mustPick && rng.Float64() >= prob {
			continue
		}
		if addBogusDetour(f, b, rng, opaque) {
			changed = true
		}
	}
	return changed
}

// addBogusDetour splits b after its phi prefix (at a random point) and
// wires in the opaque predicate plus a junk block.
func addBogusDetour(f *ir.Function, b *ir.Block, rng *rand.Rand, opaque bool) bool {
	first := b.FirstNonPhi()
	if len(b.Instrs)-first < 1 {
		return false
	}
	// Split point: after the phis, before the terminator at the latest.
	span := len(b.Instrs) - first // includes terminator
	cut := first
	if span > 1 {
		cut = first + rng.Intn(span-1)
	}

	// tail gets everything from cut onwards.
	tail := f.InsertBlockAfter(b, b.Label()+".split")
	tail.Instrs = append(tail.Instrs, b.Instrs[cut:]...)
	for _, in := range tail.Instrs {
		in.Parent = tail
	}
	b.Instrs = b.Instrs[:cut]

	// Successor phis now receive control from tail instead of b.
	for _, s := range tail.Succs() {
		for _, phi := range s.Phis() {
			for i, blk := range phi.Blocks {
				if blk == b {
					phi.Blocks[i] = tail
				}
			}
		}
	}

	// Junk block: arithmetic noise over the opaque globals, then a jump
	// back into the real tail — the classic "fake loop" shape of bcf.
	junk := f.InsertBlockAfter(b, b.Label()+".bogus")
	jb := ir.NewBuilder(junk)
	gx := f.Mod.Global(opaqueXName)
	gy := f.Mod.Global(opaqueYName)
	v1 := jb.Load(gx)
	v2 := jb.Load(gy)
	noise := []ir.Value{v1, v2}
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		a := noise[rng.Intn(len(noise))]
		c := noise[rng.Intn(len(noise))]
		op := []ir.Opcode{ir.OpAdd, ir.OpMul, ir.OpXor, ir.OpSub, ir.OpOr}[rng.Intn(5)]
		noise = append(noise, jb.Binary(op, a, c))
	}
	jb.Store(noise[len(noise)-1], gy)
	jb.Br(tail)

	bb := ir.NewBuilder(b)
	var cond ir.Value
	if opaque {
		// Opaque predicate: y < 10 || x*(x+1) % 2 == 0 — always true
		// (x*(x+1) is even), never foldable without knowing the globals.
		x := bb.Load(gx)
		y := bb.Load(gy)
		c1 := bb.ICmp(ir.CmpSLT, y, ir.ConstInt(ir.I64, 10))
		x1 := bb.Add(x, ir.ConstInt(ir.I64, 1))
		pr := bb.Mul(x, x1)
		rem := bb.Binary(ir.OpSRem, pr, ir.ConstInt(ir.I64, 2))
		c2 := bb.ICmp(ir.CmpEQ, rem, ir.ConstInt(ir.I64, 0))
		cond = bb.Or(c1, c2)
	} else {
		// Foldable predicate (ablation): a comparison of constants that
		// SCCP resolves instantly.
		k := int64(rng.Intn(100))
		cond = bb.ICmp(ir.CmpSLT, ir.ConstInt(ir.I64, k), ir.ConstInt(ir.I64, k+1))
	}
	bb.CondBr(cond, tail, junk)
	return true
}
