package obfus_test

import (
	"math/rand"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
)

var testPrograms = []struct {
	name string
	src  string
}{
	{"loops", `int main() {
		int s = 0;
		for (int i = 0; i < 40; i++) {
			if (i % 2 == 0) s += i; else s -= 1;
		}
		return s;
	}`},
	{"recursion", `
	int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
	int main() { return fib(14); }`},
	{"bitops", `int main() {
		int a = 12345; int b = 54321;
		int c = (a & b) + (a | b) - (a ^ b);
		c = c << 2 >> 1;
		return c % 100000;
	}`},
	{"arrays", `int main() {
		int a[8];
		for (int i = 0; i < 8; i++) a[i] = i * 3 + 1;
		int s = 0;
		for (int i = 7; i >= 0; i--) s = s * 2 + a[i];
		return s % 1000000;
	}`},
	{"switchy", `int main() {
		int acc = 0;
		for (int i = 0; i < 12; i++) {
			switch (i % 4) {
			case 0: acc += 1; break;
			case 1: acc += 10; break;
			case 2: acc += 100; break;
			default: acc += 1000;
			}
		}
		return acc;
	}`},
	{"floats", `int main() {
		float x = 1.0;
		for (int i = 0; i < 10; i++) x = x * 1.5 - 0.25;
		return (int)(x * 100.0);
	}`},
	{"calls", `
	int twice(int v) { return v + v; }
	int inc(int v) { return v + 1; }
	int main() {
		int r = 0;
		for (int i = 0; i < 9; i++) r = inc(twice(r)) % 10007;
		return r;
	}`},
	{"globals_io", `
	int g[4] = {2, 4, 6, 8};
	int main() {
		int s = 0;
		for (int i = 0; i < 4; i++) { print(g[i]); s += g[i]; }
		return s;
	}`},
}

func compileRun(t *testing.T, src string) (int64, string) {
	t.Helper()
	m, err := minic.CompileSource(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Ret, res.Output
}

// mustVerify fails the test when a transform has left the module malformed.
// Obfuscators rewrite the CFG aggressively; shape checks alone would let
// dominance and terminator bugs through.
func mustVerify(t *testing.T, m *ir.Module) {
	t.Helper()
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR after transform: %v\n%s", err, m.String())
	}
}

// TestObfuscationsPreserveSemantics applies every obfuscation (with several
// seeds) to every program and compares behaviour.
func TestObfuscationsPreserveSemantics(t *testing.T) {
	for _, prog := range testPrograms {
		wantRet, wantOut := compileRun(t, prog.src)
		for _, name := range []string{"sub", "bcf", "fla", "ollvm"} {
			for seed := int64(1); seed <= 3; seed++ {
				m, err := minic.CompileSource(prog.src, "t")
				if err != nil {
					t.Fatal(err)
				}
				if err := obfus.Apply(m, name, rand.New(rand.NewSource(seed))); err != nil {
					t.Fatalf("%s/%s seed %d: %v", prog.name, name, seed, err)
				}
				mustVerify(t, m)
				res, err := interp.Run(m, interp.Options{})
				if err != nil {
					t.Fatalf("%s/%s seed %d: run: %v\nIR:\n%s", prog.name, name, seed, err, m.String())
				}
				if res.Ret != wantRet || res.Output != wantOut {
					t.Fatalf("%s/%s seed %d changed behaviour: ret %d->%d out %q->%q",
						prog.name, name, seed, wantRet, res.Ret, wantOut, res.Output)
				}
			}
		}
	}
}

// TestObfuscationThenOptimizationPreserved runs the Game-3 combination:
// obfuscate, then normalize with -O3.
func TestObfuscationThenOptimizationPreserved(t *testing.T) {
	for _, prog := range testPrograms {
		wantRet, wantOut := compileRun(t, prog.src)
		for _, name := range []string{"sub", "bcf", "fla", "ollvm"} {
			m, err := minic.CompileSource(prog.src, "t")
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			if err := obfus.Apply(m, name, rng); err != nil {
				t.Fatalf("%s/%s: %v", prog.name, name, err)
			}
			mustVerify(t, m)
			if err := passes.Optimize(m, passes.O3); err != nil {
				t.Fatalf("%s/%s + O3: %v", prog.name, name, err)
			}
			mustVerify(t, m)
			res, err := interp.Run(m, interp.Options{})
			if err != nil {
				t.Fatalf("%s/%s + O3: run: %v", prog.name, name, err)
			}
			if res.Ret != wantRet || res.Output != wantOut {
				t.Fatalf("%s/%s + O3 changed behaviour: ret %d->%d out %q->%q",
					prog.name, name, wantRet, res.Ret, wantOut, res.Output)
			}
		}
	}
}

func opcodeHistogram(m *ir.Module) [ir.NumOpcodes]int {
	var h [ir.NumOpcodes]int
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) { h[in.Op]++ })
	}
	return h
}

// TestSubChangesOpcodeMix: instruction substitution must add bitwise noise.
func TestSubChangesOpcodeMix(t *testing.T) {
	src := `int main() {
		int s = 0;
		for (int i = 0; i < 10; i++) s = s + i;
		return s - 3;
	}`
	m, _ := minic.CompileSource(src, "t")
	before := opcodeHistogram(m)
	m2, _ := minic.CompileSource(src, "t")
	if err := obfus.Apply(m2, "sub", rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m2)
	after := opcodeHistogram(m2)
	if after == before {
		t.Fatal("sub did not change the opcode histogram")
	}
	total := func(h [ir.NumOpcodes]int) int {
		n := 0
		for _, v := range h {
			n += v
		}
		return n
	}
	if total(after) <= total(before) {
		t.Fatalf("sub should grow the program: %d -> %d", total(before), total(after))
	}
}

// TestFlaCreatesDispatcher: flattening must leave a switch-in-loop shape.
func TestFlaCreatesDispatcher(t *testing.T) {
	src := `int main() {
		int s = 0;
		for (int i = 0; i < 10; i++) { if (i % 2) s += i; else s -= i; }
		return s + 100;
	}`
	m, _ := minic.CompileSource(src, "t")
	nSwitchBefore := opcodeHistogram(m)[ir.OpSwitch]
	if err := obfus.Apply(m, "fla", rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	h := opcodeHistogram(m)
	if h[ir.OpSwitch] <= nSwitchBefore {
		t.Fatal("flattening did not introduce a dispatcher switch")
	}
	if h[ir.OpPhi] != 0 {
		t.Fatal("flattened code must not contain phis")
	}
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 105 {
		t.Fatalf("ret = %d, want 105", res.Ret)
	}
}

// TestBCFAddsBlocksAndResistsO3: bogus control flow adds CFG mass that -O3
// cannot fully remove (the opaque predicate is built on globals).
func TestBCFAddsBlocksAndResistsO3(t *testing.T) {
	src := `int main() {
		int s = 1;
		for (int i = 1; i < 8; i++) s *= i;
		return s % 10000;
	}`
	m, _ := minic.CompileSource(src, "t")
	blocksBefore := len(m.Func("main").Blocks)
	if err := obfus.Apply(m, "bcf", rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	if len(m.Func("main").Blocks) <= blocksBefore {
		t.Fatal("bcf did not add blocks")
	}
	if err := passes.Optimize(m, passes.O3); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	// The opaque predicate must survive optimization: there should still
	// be at least one conditional branch guarding a bogus path.
	if opcodeHistogram(m)[ir.OpCondBr] == 0 {
		t.Fatalf("O3 folded the opaque predicate:\n%s", m.String())
	}
}

// TestDemoteRegistersRoundTrip: demotion alone must preserve semantics and
// eliminate cross-block SSA uses.
func TestDemoteRegistersRoundTrip(t *testing.T) {
	src := `int main() {
		int a = 3; int b = 4; int s = 0;
		for (int i = 0; i < 6; i++) { int t = a; a = b; b = t + b; s += a; }
		return s;
	}`
	m, _ := minic.CompileSource(src, "t")
	f := m.Func("main")
	passes.Mem2Reg(f) // create real cross-block SSA + phis first
	want, _ := compileRun(t, src)
	obfus.DemoteRegisters(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("demotion produced invalid IR: %v\n%s", err, m.String())
	}
	// No value may cross blocks now.
	f.ForEachInstr(func(in *ir.Instr) {
		for _, a := range in.Args {
			if d, ok := a.(*ir.Instr); ok && d.Op != ir.OpAlloca && d.Parent != in.Parent {
				t.Fatalf("cross-block use of %s survives demotion", d.Ref())
			}
		}
	})
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != want {
		t.Fatalf("demotion changed result: %d, want %d", res.Ret, want)
	}
}

// TestOllvmStacksAllThree: the combined pass applies and still runs.
func TestOllvmStacksAllThree(t *testing.T) {
	src := testPrograms[0].src
	wantRet, _ := compileRun(t, src)
	m, _ := minic.CompileSource(src, "t")
	sizeBefore := m.NumInstrs()
	if err := obfus.Apply(m, "ollvm", rand.New(rand.NewSource(9))); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	if m.NumInstrs() < sizeBefore*2 {
		t.Fatalf("ollvm should grow code substantially: %d -> %d", sizeBefore, m.NumInstrs())
	}
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != wantRet {
		t.Fatalf("ret = %d, want %d", res.Ret, wantRet)
	}
}

func TestUnknownTransformRejected(t *testing.T) {
	m, _ := minic.CompileSource("int main() { return 0; }", "t")
	if err := obfus.Apply(m, "nope", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for unknown transformation")
	}
}
