package interp_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
)

// buildFn wraps a single-block function body into a runnable module.
func buildFn(ret *ir.Type, params []*ir.Type, emit func(bd *ir.Builder, args []ir.Value) ir.Value) *ir.Module {
	m := ir.NewModule("ops")
	names := make([]string, len(params))
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	f := m.Add(ir.NewFunction("f", ret, names, params))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	vals := make([]ir.Value, len(f.Params))
	for i, p := range f.Params {
		vals[i] = p
	}
	bd.Ret(emit(bd, vals))
	// main so Run-based helpers still work if needed.
	mainFn := m.Add(ir.NewFunction("main", ir.I64, nil, nil))
	mb := mainFn.NewBlock("entry")
	ir.NewBuilder(mb).Ret(ir.ConstInt(ir.I64, 0))
	return m
}

func call2(t *testing.T, m *ir.Module, a, b int64) int64 {
	t.Helper()
	mach, err := interp.NewMachine(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mach.Call("f", interp.Val{I: a}, interp.Val{I: b})
	if err != nil {
		t.Fatal(err)
	}
	return v.I
}

// TestUnsignedOps checks udiv/urem/lshr, which the MiniC front end never
// emits but obfuscation and hand-written IR can.
func TestUnsignedOps(t *testing.T) {
	udiv := buildFn(ir.I64, []*ir.Type{ir.I64, ir.I64}, func(bd *ir.Builder, a []ir.Value) ir.Value {
		return bd.Binary(ir.OpUDiv, a[0], a[1])
	})
	urem := buildFn(ir.I64, []*ir.Type{ir.I64, ir.I64}, func(bd *ir.Builder, a []ir.Value) ir.Value {
		return bd.Binary(ir.OpURem, a[0], a[1])
	})
	lshr := buildFn(ir.I64, []*ir.Type{ir.I64, ir.I64}, func(bd *ir.Builder, a []ir.Value) ir.Value {
		return bd.Binary(ir.OpLShr, a[0], a[1])
	})
	prop := func(x int64, yRaw uint8) bool {
		y := int64(yRaw%61) + 1
		if call2(t, udiv, x, y) != int64(uint64(x)/uint64(y)) {
			return false
		}
		if call2(t, urem, x, y) != int64(uint64(x)%uint64(y)) {
			return false
		}
		sh := y % 64
		return call2(t, lshr, x, sh) == int64(uint64(x)>>uint64(sh))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsignedComparisons(t *testing.T) {
	for _, tc := range []struct {
		pred ir.CmpPred
		a, b int64
		want int64
	}{
		{ir.CmpULT, -1, 1, 0}, // unsigned: -1 is max
		{ir.CmpUGT, -1, 1, 1},
		{ir.CmpULE, 5, 5, 1},
		{ir.CmpUGE, 0, -1, 0},
	} {
		m := buildFn(ir.I1, []*ir.Type{ir.I64, ir.I64}, func(bd *ir.Builder, a []ir.Value) ir.Value {
			return bd.ICmp(tc.pred, a[0], a[1])
		})
		if got := call2(t, m, tc.a, tc.b); got != tc.want {
			t.Errorf("icmp %s %d,%d = %d, want %d", tc.pred, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestZExtNarrowTypes(t *testing.T) {
	// zext i8 -> i64 must zero-extend even for negative (sign-bit-set)
	// i8 payloads.
	m := ir.NewModule("z")
	f := m.Add(ir.NewFunction("f", ir.I64, []string{"a"}, []*ir.Type{ir.I64}))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	tr := bd.Cast(ir.OpTrunc, f.Params[0], ir.I8)
	ze := bd.Cast(ir.OpZExt, tr, ir.I64)
	bd.Ret(ze)
	mach, err := interp.NewMachine(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mach.Call("f", interp.Val{I: -1})
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 255 {
		t.Fatalf("zext(trunc(-1)) = %d, want 255", v.I)
	}
}

func TestUIToFPAndFPToUI(t *testing.T) {
	m := ir.NewModule("u")
	f := m.Add(ir.NewFunction("f", ir.F64, []string{"a"}, []*ir.Type{ir.I64}))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	bd.Ret(bd.Cast(ir.OpUIToFP, f.Params[0], ir.F64))
	mach, err := interp.NewMachine(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mach.Call("f", interp.Val{I: -1})
	if err != nil {
		t.Fatal(err)
	}
	if v.F != math.Ldexp(1, 64)-1 && v.F != math.Ldexp(1, 64) {
		t.Fatalf("uitofp(-1) = %g, want ~2^64", v.F)
	}
}

func TestFRemAndFNeg(t *testing.T) {
	m := ir.NewModule("fr")
	f := m.Add(ir.NewFunction("f", ir.F64, nil, nil))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	r := bd.Binary(ir.OpFRem, ir.ConstFloat(7.5), ir.ConstFloat(2.0))
	bd.Ret(bd.FNeg(r))
	mach, err := interp.NewMachine(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mach.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != -1.5 {
		t.Fatalf("-(7.5 mod 2) = %g, want -1.5", v.F)
	}
}

func TestSelectAndFreeze(t *testing.T) {
	m := ir.NewModule("s")
	f := m.Add(ir.NewFunction("f", ir.I64, []string{"a", "b"}, []*ir.Type{ir.I64, ir.I64}))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	cmp := bd.ICmp(ir.CmpSLT, f.Params[0], f.Params[1])
	sel := bd.Select(cmp, f.Params[0], f.Params[1])
	fr := bd.Cast(ir.OpFreeze, sel, ir.I64)
	bd.Ret(fr)
	if got := call2(t, m, 3, 9); got != 3 {
		t.Fatalf("min(3,9) = %d", got)
	}
	if got := call2(t, m, 9, 3); got != 3 {
		t.Fatalf("min(9,3) = %d", got)
	}
}

func TestIntDivisionEdgeCases(t *testing.T) {
	sdiv := buildFn(ir.I64, []*ir.Type{ir.I64, ir.I64}, func(bd *ir.Builder, a []ir.Value) ir.Value {
		return bd.Binary(ir.OpSDiv, a[0], a[1])
	})
	// MinInt64 / -1 must not panic (LLVM UB; we define it as wrapping).
	if got := call2(t, sdiv, math.MinInt64, -1); got != math.MinInt64 {
		t.Fatalf("MinInt64 / -1 = %d", got)
	}
	srem := buildFn(ir.I64, []*ir.Type{ir.I64, ir.I64}, func(bd *ir.Builder, a []ir.Value) ir.Value {
		return bd.Binary(ir.OpSRem, a[0], a[1])
	})
	if got := call2(t, srem, math.MinInt64, -1); got != 0 {
		t.Fatalf("MinInt64 %% -1 = %d", got)
	}
}

func TestUnimplementedOpcodeTraps(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.Add(ir.NewFunction("main", ir.I64, nil, nil))
	b := f.NewBlock("entry")
	in := &ir.Instr{Op: ir.OpVAArg, Ty: ir.I64, Args: []ir.Value{ir.ConstInt(ir.I64, 0)}}
	b.Append(in)
	ir.NewBuilder(b).Ret(in)
	if _, err := interp.Run(m, interp.Options{}); err == nil {
		t.Fatal("va_arg should trap")
	}
}

func TestSwitchDispatch(t *testing.T) {
	m := ir.NewModule("sw")
	f := m.Add(ir.NewFunction("f", ir.I64, []string{"a"}, []*ir.Type{ir.I64}))
	entry := f.NewBlock("entry")
	c10 := f.NewBlock("c10")
	c20 := f.NewBlock("c20")
	def := f.NewBlock("def")
	bd := ir.NewBuilder(entry)
	bd.Switch(f.Params[0], def, []int64{10, 20}, []*ir.Block{c10, c20})
	ir.NewBuilder(c10).Ret(ir.ConstInt(ir.I64, 1))
	ir.NewBuilder(c20).Ret(ir.ConstInt(ir.I64, 2))
	ir.NewBuilder(def).Ret(ir.ConstInt(ir.I64, 3))
	mach, err := interp.NewMachine(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int64{{10, 1}, {20, 2}, {99, 3}} {
		v, err := mach.Call("f", interp.Val{I: tc[0]})
		if err != nil || v.I != tc[1] {
			t.Fatalf("switch(%d) = %v err=%v, want %d", tc[0], v.I, err, tc[1])
		}
	}
}

func TestFloatInputBuiltin(t *testing.T) {
	m := ir.NewModule("fi")
	f := m.Add(ir.NewFunction("main", ir.I64, nil, nil))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	v := bd.CallBuiltin("input_f64", ir.F64)
	v2 := bd.CallBuiltin("input_f64", ir.F64) // exhausted -> 0
	s := bd.Binary(ir.OpFAdd, v, v2)
	bd.Ret(bd.Cast(ir.OpFPToSI, s, ir.I64))
	res, err := interp.Run(m, interp.Options{FloatInput: []float64{2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 2 {
		t.Fatalf("ret = %d, want 2", res.Ret)
	}
}
