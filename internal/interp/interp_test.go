package interp_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := minic.CompileSource(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestDivisionByZeroTraps(t *testing.T) {
	m := compile(t, `int main() { int z = input(); return 7 / z; }`)
	if _, err := interp.Run(m, interp.Options{Input: []int64{0}}); err == nil {
		t.Fatal("division by zero did not trap")
	}
	res, err := interp.Run(m, interp.Options{Input: []int64{7}})
	if err != nil || res.Ret != 1 {
		t.Fatalf("7/7: ret=%v err=%v", res, err)
	}
}

func TestStepBudgetTraps(t *testing.T) {
	m := compile(t, `int main() { while (1) {} return 0; }`)
	_, err := interp.Run(m, interp.Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("infinite loop not caught: %v", err)
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	m := compile(t, `int main() {
		int a[4];
		int i = input();
		a[i] = 1;
		return a[i];
	}`)
	if _, err := interp.Run(m, interp.Options{Input: []int64{1000000}}); err == nil {
		t.Fatal("wild store did not trap")
	}
}

func TestNullDereferenceTraps(t *testing.T) {
	m := compile(t, `int main() {
		int *p = (int*)0;
		return *p;
	}`)
	if _, err := interp.Run(m, interp.Options{}); err == nil {
		t.Fatal("null dereference did not trap")
	}
}

func TestStackOverflowTraps(t *testing.T) {
	m := compile(t, `
	int f(int n) { return f(n + 1); }
	int main() { return f(0); }`)
	if _, err := interp.Run(m, interp.Options{}); err == nil {
		t.Fatal("unbounded recursion did not trap")
	}
}

func TestCallAPI(t *testing.T) {
	m := compile(t, `
	int add3(int a, int b, int c) { return a + b + c; }
	int main() { return 0; }`)
	mach, err := interp.NewMachine(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mach.Call("add3", interp.Val{I: 1}, interp.Val{I: 2}, interp.Val{I: 3})
	if err != nil || v.I != 6 {
		t.Fatalf("add3 = %v, err %v", v, err)
	}
	if _, err := mach.Call("nosuch"); err == nil {
		t.Fatal("call to missing function did not error")
	}
}

func TestFrameMemoryReclaimed(t *testing.T) {
	// A function with a large local called many times must not exhaust the
	// arena: frames are popped on return.
	m := compile(t, `
	int work(int x) {
		int buf[1000];
		for (int i = 0; i < 1000; i++) buf[i] = x + i;
		return buf[999];
	}
	int main() {
		int s = 0;
		for (int i = 0; i < 2000; i++) s = (s + work(i)) % 1000003;
		return s;
	}`)
	if _, err := interp.Run(m, interp.Options{MaxMem: 4 << 20}); err != nil {
		t.Fatalf("frame memory not reclaimed: %v", err)
	}
}

func TestGlobalInitializers(t *testing.T) {
	m := compile(t, `
	int g = 41;
	float f = 2.5;
	int arr[3] = {7, 8, 9};
	int main() { return g + (int)f + arr[2]; }`)
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 41+2+9 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestCharWidthSemantics(t *testing.T) {
	m := compile(t, `int main() {
		char c = 200;
		return c;
	}`)
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// char is signed 8-bit: 200 wraps to -56.
	if res.Ret != -56 {
		t.Fatalf("signed char wrap: ret = %d, want -56", res.Ret)
	}
}

// Property: int arithmetic in the interpreter matches Go's int64 semantics.
func TestArithmeticAgainstGo(t *testing.T) {
	m := compile(t, `
	int f(int a, int b) {
		return a * 3 + (a ^ b) - (a & b) + (a | b) + (b << 3) + (a >> 2);
	}
	int main() { return 0; }`)
	mach, err := interp.NewMachine(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		want := x*3 + (x ^ y) - (x & y) + (x | y) + (y << 3) + (x >> 2)
		got, err := mach.Call("f", interp.Val{I: x}, interp.Val{I: y})
		return err == nil && got.I == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputCapture(t *testing.T) {
	m := compile(t, `int main() {
		for (int i = 0; i < 3; i++) print(i);
		prints("done");
		print(1.5);
		return 0;
	}`)
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "0\n1\n2\ndone1.500000\n"
	if res.Output != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
}

func TestDeterministicSteps(t *testing.T) {
	src := `int main() {
		int s = 0;
		for (int i = 0; i < 500; i++) s += i * i;
		return s % 99991;
	}`
	m1 := compile(t, src)
	m2 := compile(t, src)
	r1, err := interp.Run(m1, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(m2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps {
		t.Fatalf("step counts differ: %d vs %d", r1.Steps, r2.Steps)
	}
}
