package interp

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
)

// Engine executes IR modules. The tree-walking interpreter in this package
// is the reference implementation ("tree"); internal/vm registers a compiled
// bytecode engine ("vm") that must reproduce its observable semantics
// bit-for-bit: same Result (Ret, Output, Steps), same trap classes, same
// memory model. Callers select an engine by name (the -engine flag of
// arena fuzz/speedup/serve); the differential-fuzz harness runs the two
// against each other.
type Engine interface {
	// Name is the stable identifier used by -engine flags and reports.
	Name() string
	// Run executes @main of m under opts, exactly like interp.Run.
	Run(m *ir.Module, opts Options) (*Result, error)
}

var (
	enginesMu sync.RWMutex
	engines   = make(map[string]Engine)
)

// RegisterEngine makes an engine selectable by name. Engines register from
// their package init; a duplicate name panics because it means two packages
// claim the same -engine value.
func RegisterEngine(e Engine) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	if _, dup := engines[e.Name()]; dup {
		panic("interp: duplicate engine " + e.Name())
	}
	engines[e.Name()] = e
}

// EngineByName resolves an -engine flag value. The empty string means the
// tree interpreter, so every call site has a sane default.
func EngineByName(name string) (Engine, error) {
	if name == "" {
		name = "tree"
	}
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	if e, ok := engines[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("interp: unknown engine %q (have %v)", name, engineNamesLocked())
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	return engineNamesLocked()
}

func engineNamesLocked() []string {
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// treeEngine adapts the tree-walking interpreter to the Engine interface.
type treeEngine struct{}

func (treeEngine) Name() string                                   { return "tree" }
func (treeEngine) Run(m *ir.Module, opts Options) (*Result, error) { return Run(m, opts) }

func init() { RegisterEngine(treeEngine{}) }
