package interp_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/progen"
	"repro/internal/vm"
)

// directlyExercised pins the opcodes that opcodes_test.go builds and runs by
// hand because neither the front end nor any transform emits them. Keep this
// list in sync with that file: every entry must correspond to a test there.
var directlyExercised = []ir.Opcode{
	ir.OpUDiv, ir.OpURem, ir.OpLShr, // TestUnsignedOps
	ir.OpZExt,   // TestZExtNarrowTypes
	ir.OpUIToFP, // TestUIToFPAndFPToUI
	ir.OpFRem,   // TestFRemAndFNeg
	ir.OpFreeze, // TestSelectAndFreeze
	ir.OpVAArg,  // TestUnimplementedOpcodeTraps
}

// sweepOps is the remainder of the opcode space: conversions the interpreter
// handles but nothing emits, plus the exotic tail (vectors, atomics,
// exception handling) that exists so the histogram embedding matches the
// paper's 63 dimensions. TestOpcodeCoverage itself drives each one through
// the interpreter, accepting either a value or a clean trap — never a crash.
var sweepOps = []ir.Opcode{
	ir.OpUnreachable,
	ir.OpFPTrunc, ir.OpFPExt, ir.OpFPToUI,
	ir.OpPtrToInt, ir.OpIntToPtr, ir.OpAddrSpaceCast,
	ir.OpExtractValue, ir.OpInsertValue,
	ir.OpExtractElement, ir.OpInsertElement, ir.OpShuffleVector,
	ir.OpFence, ir.OpCmpXchg, ir.OpAtomicRMW,
	ir.OpIndirectBr, ir.OpInvoke, ir.OpCallBr, ir.OpResume,
	ir.OpLandingPad, ir.OpCatchPad, ir.OpCleanupPad,
}

func markOpcodes(m *ir.Module, cover []bool) {
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) { cover[in.Op] = true })
	}
}

// sweepModule wraps a single instruction of the given opcode into a runnable
// main, with argument types chosen so evaluation reaches the opcode itself.
func sweepModule(op ir.Opcode) *ir.Module {
	m := ir.NewModule("sweep")
	f := m.Add(ir.NewFunction("main", ir.I64, nil, nil))
	b := f.NewBlock("entry")
	in := &ir.Instr{Op: op, Ty: ir.I64}
	switch {
	case op == ir.OpUnreachable:
		// A terminator on its own: executing it must trap.
	case op == ir.OpFPTrunc || op == ir.OpFPExt || op == ir.OpFPToUI:
		in.Args = []ir.Value{ir.ConstFloat(1.5)}
		if op != ir.OpFPToUI {
			in.Ty = ir.F64
		}
	case op == ir.OpFRem:
		in.Args = []ir.Value{ir.ConstFloat(7.5), ir.ConstFloat(2.0)}
		in.Ty = ir.F64
	case op == ir.OpUIToFP:
		in.Args = []ir.Value{ir.ConstInt(ir.I64, 8)}
		in.Ty = ir.F64
	case op == ir.OpUDiv || op == ir.OpURem || op == ir.OpLShr:
		in.Args = []ir.Value{ir.ConstInt(ir.I64, 8), ir.ConstInt(ir.I64, 2)}
	case op == ir.OpZExt || op == ir.OpFreeze || op == ir.OpVAArg:
		in.Args = []ir.Value{ir.ConstInt(ir.I64, 8)}
	default:
		in.Args = []ir.Value{ir.ConstInt(ir.I64, 8), ir.ConstInt(ir.I64, 0)}
	}
	b.Append(in)
	if op != ir.OpUnreachable {
		ir.NewBuilder(b).Ret(ir.ConstInt(ir.I64, 0))
	}
	return m
}

// markVM compiles m to bytecode and records every opcode the compiler
// lowered; the corpus modules thus prove the VM's compile path handles the
// opcodes real programs produce (execution parity over the same corpus is
// TestVMMatchesInterpCorpus in internal/vm).
func markVM(t *testing.T, m *ir.Module, cover []bool) {
	t.Helper()
	if _, err := vm.Compile(m); err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) { cover[in.Op] = true })
	}
}

// markThaw round-trips m through the flat view (Flatten -> Thaw ->
// Flatten), requires byte-identical tables and an identical module print,
// then records every opcode that survived — proving each opcode the corpus
// produces round-trips through the thaw path losslessly.
func markThaw(t *testing.T, m *ir.Module, cover []bool) {
	t.Helper()
	want := m.String()
	fl := ir.Flatten(m)
	th := ir.Thaw(fl)
	if got := th.String(); got != want {
		t.Fatalf("thawed module prints differently:\n--- original ---\n%s\n--- thawed ---\n%s", want, got)
	}
	if d := ir.FlatDiff(fl, ir.Flatten(th)); d != "" {
		t.Fatalf("thawed module re-flattens differently: %s", d)
	}
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) { cover[in.Op] = true })
	}
}

// TestOpcodeCoverage asserts that every one of the 63 IR opcodes is exercised
// by the interpreter test suite: the differential-fuzzing corpus (generated
// programs at O0, after -O3, and after the stacked obfuscator) covers the
// opcodes real programs produce, opcodes_test.go covers the hand-built ones,
// and a direct sweep here drives the never-emitted tail. A new opcode — or a
// generator regression that stops emitting one — fails with the missing list.
//
// The same accounting runs against the bytecode VM: every corpus module is
// lowered through vm.Compile, and the tail opcodes the corpus never emits
// are driven through the vm engine directly, so both engines are proven to
// stay in control on all 63 opcodes.
//
// A third ledger runs the flat IR round-trip: every corpus module and every
// sweep module goes through Flatten -> Thaw -> Flatten, which must be
// byte-identical and print-identical — so all 63 opcodes are proven to
// survive the thaw path too.
func TestOpcodeCoverage(t *testing.T) {
	cover := make([]bool, ir.NumOpcodes)
	vmCover := make([]bool, ir.NumOpcodes)
	thawCover := make([]bool, ir.NumOpcodes)

	for seed := int64(0); seed < 40; seed++ {
		src := progen.GenerateSeed(seed)
		m, err := minic.CompileSource(src, "cov")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		markOpcodes(m, cover)
		markVM(t, m, vmCover)
		markThaw(t, m, thawCover)
		m2, _ := minic.CompileSource(src, "cov")
		if err := passes.Optimize(m2, passes.O3); err != nil {
			t.Fatalf("seed %d O3: %v", seed, err)
		}
		markOpcodes(m2, cover)
		markVM(t, m2, vmCover)
		markThaw(t, m2, thawCover)
		m3, _ := minic.CompileSource(src, "cov")
		if err := obfus.Apply(m3, "ollvm", rand.New(rand.NewSource(seed))); err != nil {
			t.Fatalf("seed %d ollvm: %v", seed, err)
		}
		markOpcodes(m3, cover)
		markVM(t, m3, vmCover)
		markThaw(t, m3, thawCover)
	}

	for _, op := range directlyExercised {
		cover[op] = true
	}

	// sweepEngines executes one sweep module on the interpreter and the VM,
	// accepting a value or a clean trap from either — never a crash.
	sweepEngines := func(op ir.Opcode) {
		m := sweepModule(op)
		for _, name := range interp.EngineNames() {
			eng, err := interp.EngineByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(m, interp.Options{}); err != nil &&
				!strings.Contains(err.Error(), "unimplemented opcode") &&
				!strings.Contains(err.Error(), "unreachable") {
				t.Errorf("%s on %s: unexpected trap class: %v", op, name, err)
			}
		}
	}

	for _, op := range sweepOps {
		if cover[op] {
			t.Errorf("%s is in sweepOps but the corpus already emits it; move it out", op)
		}
		sweepEngines(op)
		markThaw(t, sweepModule(op), thawCover)
		cover[op] = true
		vmCover[op] = true
	}

	// The hand-exercised opcodes go through the interpreter in
	// opcodes_test.go via Machine.Call; the VM runs whole modules, so drive
	// each through a main-wrapped sweep here to cover its bytecode path. The
	// same sweep modules feed the thaw round-trip ledger, so the tail
	// opcodes the corpus never emits are proven on that path too.
	for _, op := range directlyExercised {
		markThaw(t, sweepModule(op), thawCover)
		if vmCover[op] {
			continue
		}
		sweepEngines(op)
		vmCover[op] = true
	}

	report := func(engine string, cov []bool) {
		var missing []string
		for op := ir.Opcode(0); op < ir.NumOpcodes; op++ {
			if !cov[op] {
				missing = append(missing, op.String())
			}
		}
		if len(missing) > 0 {
			t.Fatalf("%s: %d of %d opcodes not exercised by the corpus, opcodes_test.go or the sweep: %s",
				engine, len(missing), ir.NumOpcodes, strings.Join(missing, ", "))
		}
	}
	report("tree", cover)
	report("vm", vmCover)
	report("thaw", thawCover)
}
