// Package interp executes IR modules in a flat byte-addressed memory model.
// It serves two purposes in the arena: (1) semantics-preservation testing —
// every obfuscation and optimization pass is validated by comparing program
// output before and after the transformation; (2) the performance experiment
// of the paper (Figure 13), where the dynamic instruction count stands in
// for wall-clock time.
package interp

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// Result is the outcome of executing a module.
type Result struct {
	// Ret is main's return value.
	Ret int64
	// Output is everything the program printed.
	Output string
	// Steps is the number of executed instructions (the paper's
	// architecture-independent time proxy for Figure 13).
	Steps int64
}

// Options configure execution.
type Options struct {
	// Input is consumed by the input builtins, one value per call.
	Input []int64
	// FloatInput is consumed by inputf.
	FloatInput []float64
	// MaxSteps aborts execution after this many instructions (0 = default
	// of 200 million, protecting tests against accidental infinite loops).
	MaxSteps int64
	// MaxMem bounds the memory arena in bytes (0 = 64 MiB).
	MaxMem int
}

// Val is a dynamic value: integers and pointers in I, floats in F.
type Val struct {
	I int64
	F float64
}

type frame struct {
	fn   *ir.Function
	vals map[*ir.Instr]Val
	args []Val
	// sp is the stack pointer to restore on return.
	sp int
}

// Machine executes one module.
type Machine struct {
	mod   *ir.Module
	mem   []byte
	sp    int // bump pointer for stack allocations
	heapN int
	opts  Options

	inI, inF int
	out      strings.Builder
	steps    int64
	maxSteps int64

	globalAddr map[*ir.Global]int64
	callDepth  int
}

// errTrap is a runtime trap (bad memory access, division by zero, budget
// exhaustion); it aborts execution with an error rather than panicking.
type errTrap struct{ msg string }

func (e errTrap) Error() string { return e.msg }

// Run executes fn main of the module with the given options.
func Run(m *ir.Module, opts Options) (*Result, error) {
	mach, err := NewMachine(m, opts)
	if err != nil {
		return nil, err
	}
	return mach.RunMain()
}

// NewMachine prepares an execution machine: memory arena plus globals.
func NewMachine(m *ir.Module, opts Options) (*Machine, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	if opts.MaxMem == 0 {
		opts.MaxMem = 64 << 20
	}
	mach := &Machine{
		mod:        m,
		mem:        make([]byte, 1<<16),
		sp:         16, // keep address 0 invalid (null)
		opts:       opts,
		maxSteps:   opts.MaxSteps,
		globalAddr: make(map[*ir.Global]int64),
	}
	for _, g := range m.Globals {
		addr, err := mach.alloc(g.Elem.Size())
		if err != nil {
			return nil, err
		}
		mach.globalAddr[g] = addr
		if err := mach.initGlobal(g, addr); err != nil {
			return nil, err
		}
	}
	return mach, nil
}

func (mc *Machine) initGlobal(g *ir.Global, addr int64) error {
	elem := g.Elem
	switch {
	case elem.IsArray():
		sz := elem.Elem.Size()
		for i, v := range g.InitI {
			mc.storeScalar(addr+int64(i*sz), elem.Elem, Val{I: v})
		}
		for i, v := range g.InitF {
			mc.storeScalar(addr+int64(i*sz), elem.Elem, Val{F: v})
		}
	default:
		if len(g.InitI) > 0 {
			mc.storeScalar(addr, elem, Val{I: g.InitI[0]})
		}
		if len(g.InitF) > 0 {
			mc.storeScalar(addr, elem, Val{F: g.InitF[0]})
		}
	}
	return nil
}

func (mc *Machine) alloc(size int) (int64, error) {
	if size < 0 {
		return 0, errTrap{"negative allocation"}
	}
	// Round to 8 bytes for alignment.
	size = (size + 7) &^ 7
	if mc.sp+size > mc.opts.MaxMem {
		return 0, errTrap{"out of memory"}
	}
	if need := mc.sp + size; need > len(mc.mem) {
		// Double up to the demand, but never past MaxMem: the bound is a
		// promise about arena footprint, not just about program behavior.
		newLen := len(mc.mem)
		for newLen < need {
			newLen *= 2
		}
		if newLen > mc.opts.MaxMem {
			newLen = mc.opts.MaxMem
		}
		grown := make([]byte, newLen)
		copy(grown, mc.mem)
		mc.mem = grown
	}
	addr := int64(mc.sp)
	mc.sp += size
	return addr, nil
}

// RunMain executes @main with no arguments.
func (mc *Machine) RunMain() (res *Result, err error) {
	main := mc.mod.Func("main")
	if main == nil {
		return nil, fmt.Errorf("interp: module has no main")
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(errTrap); ok {
				err = fmt.Errorf("interp: trap: %s", t.msg)
				return
			}
			panic(r)
		}
	}()
	v, err := mc.call(main, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Ret: v.I, Output: mc.out.String(), Steps: mc.steps}, nil
}

// Call executes an arbitrary function with the given arguments (used by
// property tests that compare functions before/after transformation).
func (mc *Machine) Call(name string, args ...Val) (v Val, err error) {
	f := mc.mod.Func(name)
	if f == nil {
		return Val{}, fmt.Errorf("interp: no function %s", name)
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(errTrap); ok {
				err = fmt.Errorf("interp: trap: %s", t.msg)
				return
			}
			panic(r)
		}
	}()
	return mc.call(f, args)
}

// Steps returns the instructions executed so far.
func (mc *Machine) Steps() int64 { return mc.steps }

// Output returns everything printed so far.
func (mc *Machine) Output() string { return mc.out.String() }

func (mc *Machine) call(f *ir.Function, args []Val) (Val, error) {
	if f.IsDecl() {
		return Val{}, errTrap{"call to declaration @" + f.Name}
	}
	mc.callDepth++
	if mc.callDepth > 10000 {
		panic(errTrap{"call stack overflow"})
	}
	fr := &frame{fn: f, vals: make(map[*ir.Instr]Val, 32), args: args, sp: mc.sp}
	defer func() {
		mc.sp = fr.sp // free the frame's allocas
		mc.callDepth--
	}()

	block := f.Entry()
	var prev *ir.Block
	for {
		nextBlock, retVal, done, err := mc.execBlock(fr, block, prev)
		if err != nil {
			return Val{}, err
		}
		if done {
			return retVal, nil
		}
		prev, block = block, nextBlock
	}
}

func (mc *Machine) execBlock(fr *frame, b, prev *ir.Block) (*ir.Block, Val, bool, error) {
	// Phis evaluate simultaneously from the incoming edge.
	phis := b.Phis()
	if len(phis) > 0 {
		tmp := make([]Val, len(phis))
		for i, phi := range phis {
			inc := phi.PhiIncoming(prev)
			if inc == nil {
				panic(errTrap{"phi has no incoming value for edge " + prev.Label() + "->" + b.Label()})
			}
			tmp[i] = mc.eval(fr, inc)
		}
		for i, phi := range phis {
			fr.vals[phi] = tmp[i]
			mc.step()
		}
	}
	for _, in := range b.Instrs[len(phis):] {
		mc.step()
		switch in.Op {
		case ir.OpRet:
			if len(in.Args) == 0 {
				return nil, Val{}, true, nil
			}
			return nil, mc.eval(fr, in.Args[0]), true, nil
		case ir.OpBr:
			return in.Blocks[0], Val{}, false, nil
		case ir.OpCondBr:
			if mc.eval(fr, in.Args[0]).I != 0 {
				return in.Blocks[0], Val{}, false, nil
			}
			return in.Blocks[1], Val{}, false, nil
		case ir.OpSwitch:
			v := mc.eval(fr, in.Args[0]).I
			target := in.Blocks[0]
			for i, sv := range in.SwitchVals {
				if sv == v {
					target = in.Blocks[i+1]
					break
				}
			}
			return target, Val{}, false, nil
		case ir.OpUnreachable:
			panic(errTrap{"reached unreachable in @" + fr.fn.Name})
		default:
			v, err := mc.execInstr(fr, in)
			if err != nil {
				return nil, Val{}, false, err
			}
			if in.HasResult() {
				fr.vals[in] = v
			}
		}
	}
	panic(errTrap{"block " + b.Label() + " fell through without terminator"})
}

func (mc *Machine) step() {
	mc.steps++
	if mc.steps > mc.maxSteps {
		panic(errTrap{"instruction budget exhausted (" + strconv.FormatInt(mc.maxSteps, 10) + ")"})
	}
}

func (mc *Machine) eval(fr *frame, v ir.Value) Val {
	switch x := v.(type) {
	case *ir.Const:
		if x.Ty.IsFloat() {
			return Val{F: x.F}
		}
		return Val{I: x.I}
	case *ir.Param:
		if x.Index >= len(fr.args) {
			panic(errTrap{"missing argument " + x.Name})
		}
		return fr.args[x.Index]
	case *ir.Instr:
		val, ok := fr.vals[x]
		if !ok {
			panic(errTrap{"use of undefined value " + x.Ref() + " in @" + fr.fn.Name})
		}
		return val
	case *ir.Global:
		addr, ok := mc.globalAddr[x]
		if !ok {
			// A global that was never registered with the module would
			// otherwise evaluate to address 0 and surface much later as a
			// baffling memory trap; name the culprit at the use site.
			panic(errTrap{"use of unknown global @" + x.Name + " in @" + fr.fn.Name})
		}
		return Val{I: addr}
	case *ir.Function:
		panic(errTrap{"function pointers are not supported"})
	}
	panic(errTrap{"unknown value kind"})
}

// FPToInt64 is the defined float-to-integer conversion of the IR: NaN and
// ±Inf convert to 0 (the historical carve-out), and finite values outside
// the int64 range saturate to MinInt64/MaxInt64. Go's own int64(f) is
// implementation-dependent for out-of-range values (amd64 yields MinInt64,
// arm64 saturates), which would make the fuzz oracle and the Figure-13 step
// counts architecture-dependent; pinning saturation here keeps every engine
// and every architecture bit-identical.
func FPToInt64(f float64) int64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	// math.MaxInt64 as a float64 constant rounds up to 2^63, so >= catches
	// exactly the values that overflow; -2^63 itself is representable.
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f < math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}

func truncInt(t *ir.Type, v int64) int64 {
	if !t.IsInt() || t.Bits >= 64 {
		return v
	}
	shift := 64 - uint(t.Bits)
	return v << shift >> shift
}

func (mc *Machine) execInstr(fr *frame, in *ir.Instr) (Val, error) {
	switch {
	case in.Op.IsIntBinary():
		a := mc.eval(fr, in.Args[0]).I
		b := mc.eval(fr, in.Args[1]).I
		r, err := intBinop(in.Op, a, b, in.Ty)
		if err != nil {
			panic(errTrap{err.Error() + " in @" + fr.fn.Name})
		}
		return Val{I: truncInt(in.Ty, r)}, nil

	case in.Op.IsFloatBinary():
		a := mc.eval(fr, in.Args[0]).F
		b := mc.eval(fr, in.Args[1]).F
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = a + b
		case ir.OpFSub:
			r = a - b
		case ir.OpFMul:
			r = a * b
		case ir.OpFDiv:
			r = a / b
		case ir.OpFRem:
			r = math.Mod(a, b)
		}
		return Val{F: r}, nil
	}

	switch in.Op {
	case ir.OpFNeg:
		return Val{F: -mc.eval(fr, in.Args[0]).F}, nil

	case ir.OpAlloca:
		addr, err := mc.alloc(in.AllocaTy.Size())
		if err != nil {
			return Val{}, err
		}
		return Val{I: addr}, nil

	case ir.OpLoad:
		addr := mc.eval(fr, in.Args[0]).I
		return mc.loadScalar(addr, in.Ty), nil

	case ir.OpStore:
		v := mc.eval(fr, in.Args[0])
		addr := mc.eval(fr, in.Args[1]).I
		mc.storeScalar(addr, in.Args[0].Type(), v)
		return Val{}, nil

	case ir.OpGEP:
		base := mc.eval(fr, in.Args[0]).I
		elem := in.Args[0].Type().Elem
		idx0 := mc.eval(fr, in.Args[1]).I
		addr := base + idx0*int64(elem.Size())
		for _, ix := range in.Args[2:] {
			switch {
			case elem.IsArray():
				elem = elem.Elem
				addr += mc.eval(fr, ix).I * int64(elem.Size())
			case elem.IsStruct():
				fi := mc.eval(fr, ix).I
				if fi < 0 || int(fi) >= len(elem.Fields) {
					panic(errTrap{"gep struct field index out of range"})
				}
				addr += int64(elem.FieldOffset(int(fi)))
				elem = elem.Fields[fi]
			default:
				panic(errTrap{"gep into non-aggregate"})
			}
		}
		return Val{I: addr}, nil

	case ir.OpICmp:
		a := mc.eval(fr, in.Args[0]).I
		b := mc.eval(fr, in.Args[1]).I
		return Val{I: boolToInt(icmp(in.Pred, a, b))}, nil

	case ir.OpFCmp:
		a := mc.eval(fr, in.Args[0]).F
		b := mc.eval(fr, in.Args[1]).F
		return Val{I: boolToInt(fcmp(in.Pred, a, b))}, nil

	case ir.OpSelect:
		if mc.eval(fr, in.Args[0]).I != 0 {
			return mc.eval(fr, in.Args[1]), nil
		}
		return mc.eval(fr, in.Args[2]), nil

	case ir.OpCall:
		args := make([]Val, len(in.Args))
		for i, a := range in.Args {
			args[i] = mc.eval(fr, a)
		}
		if in.Callee != nil {
			return mc.call(in.Callee, args)
		}
		return mc.builtin(in.Builtin, args)

	case ir.OpTrunc, ir.OpZExt, ir.OpSExt:
		v := mc.eval(fr, in.Args[0]).I
		from := in.Args[0].Type()
		switch in.Op {
		case ir.OpTrunc:
			return Val{I: truncInt(in.Ty, v)}, nil
		case ir.OpZExt:
			if from.Bits < 64 {
				mask := int64(1)<<uint(from.Bits) - 1
				v &= mask
			}
			return Val{I: v}, nil
		default: // SExt: values are stored sign-extended already
			return Val{I: v}, nil
		}

	case ir.OpFPToSI, ir.OpFPToUI:
		f := mc.eval(fr, in.Args[0]).F
		return Val{I: truncInt(in.Ty, FPToInt64(f))}, nil

	case ir.OpSIToFP:
		return Val{F: float64(mc.eval(fr, in.Args[0]).I)}, nil

	case ir.OpUIToFP:
		return Val{F: float64(uint64(mc.eval(fr, in.Args[0]).I))}, nil

	case ir.OpFPTrunc, ir.OpFPExt:
		return mc.eval(fr, in.Args[0]), nil

	case ir.OpPtrToInt, ir.OpIntToPtr, ir.OpBitcast, ir.OpAddrSpaceCast, ir.OpFreeze:
		return mc.eval(fr, in.Args[0]), nil
	}
	panic(errTrap{"unimplemented opcode " + in.Op.String()})
}

func intBinop(op ir.Opcode, a, b int64, ty *ir.Type) (int64, error) {
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul:
		return a * b, nil
	case ir.OpSDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		if a == math.MinInt64 && b == -1 {
			return a, nil
		}
		return a / b, nil
	case ir.OpUDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return int64(uint64(a) / uint64(b)), nil
	case ir.OpSRem:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		if a == math.MinInt64 && b == -1 {
			return 0, nil
		}
		return a % b, nil
	case ir.OpURem:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return int64(uint64(a) % uint64(b)), nil
	case ir.OpShl:
		return a << (uint64(b) & 63), nil
	case ir.OpLShr:
		width := uint(64)
		if ty.IsInt() && ty.Bits < 64 {
			width = uint(ty.Bits)
		}
		mask := ^uint64(0)
		if width < 64 {
			mask = 1<<width - 1
		}
		return int64((uint64(a) & mask) >> (uint64(b) & 63)), nil
	case ir.OpAShr:
		return a >> (uint64(b) & 63), nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	}
	return 0, fmt.Errorf("bad int binop %s", op)
}

func icmp(p ir.CmpPred, a, b int64) bool {
	switch p {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpSLT:
		return a < b
	case ir.CmpSLE:
		return a <= b
	case ir.CmpSGT:
		return a > b
	case ir.CmpSGE:
		return a >= b
	case ir.CmpULT:
		return uint64(a) < uint64(b)
	case ir.CmpULE:
		return uint64(a) <= uint64(b)
	case ir.CmpUGT:
		return uint64(a) > uint64(b)
	case ir.CmpUGE:
		return uint64(a) >= uint64(b)
	}
	return false
}

func fcmp(p ir.CmpPred, a, b float64) bool {
	switch p {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpSLT, ir.CmpULT:
		return a < b
	case ir.CmpSLE, ir.CmpULE:
		return a <= b
	case ir.CmpSGT, ir.CmpUGT:
		return a > b
	case ir.CmpSGE, ir.CmpUGE:
		return a >= b
	}
	return false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// --- memory ---

func (mc *Machine) checkAddr(addr int64, size int) {
	if addr < 16 || addr+int64(size) > int64(mc.sp) || addr+int64(size) > int64(len(mc.mem)) {
		panic(errTrap{fmt.Sprintf("invalid memory access at %d (size %d, break %d)", addr, size, mc.sp)})
	}
}

func (mc *Machine) loadScalar(addr int64, t *ir.Type) Val {
	sz := t.Size()
	mc.checkAddr(addr, sz)
	switch {
	case t.IsFloat():
		bits := binary.LittleEndian.Uint64(mc.mem[addr:])
		return Val{F: math.Float64frombits(bits)}
	case sz == 1:
		v := int64(int8(mc.mem[addr]))
		if t.IsInt() && t.Bits == 1 {
			v &= 1
		}
		return Val{I: v}
	case sz == 4:
		return Val{I: int64(int32(binary.LittleEndian.Uint32(mc.mem[addr:])))}
	default:
		return Val{I: int64(binary.LittleEndian.Uint64(mc.mem[addr:]))}
	}
}

func (mc *Machine) storeScalar(addr int64, t *ir.Type, v Val) {
	sz := t.Size()
	mc.checkAddr(addr, sz)
	switch {
	case t.IsFloat():
		binary.LittleEndian.PutUint64(mc.mem[addr:], math.Float64bits(v.F))
	case sz == 1:
		mc.mem[addr] = byte(v.I)
	case sz == 4:
		binary.LittleEndian.PutUint32(mc.mem[addr:], uint32(v.I))
	default:
		binary.LittleEndian.PutUint64(mc.mem[addr:], uint64(v.I))
	}
}

// --- builtins ---

func (mc *Machine) builtin(name string, args []Val) (Val, error) {
	switch name {
	case "print_i64":
		fmt.Fprintf(&mc.out, "%d\n", args[0].I)
	case "print_f64":
		fmt.Fprintf(&mc.out, "%.6f\n", args[0].F)
	case "print_i8":
		mc.out.WriteByte(byte(args[0].I))
	case "print_str":
		addr := args[0].I
		for {
			mc.checkAddr(addr, 1)
			ch := mc.mem[addr]
			if ch == 0 {
				break
			}
			mc.out.WriteByte(ch)
			addr++
		}
	case "input_i64":
		if mc.inI < len(mc.opts.Input) {
			v := mc.opts.Input[mc.inI]
			mc.inI++
			return Val{I: v}, nil
		}
		return Val{I: 0}, nil
	case "input_f64":
		if mc.inF < len(mc.opts.FloatInput) {
			v := mc.opts.FloatInput[mc.inF]
			mc.inF++
			return Val{F: v}, nil
		}
		return Val{F: 0}, nil
	case "sqrt":
		return Val{F: math.Sqrt(args[0].F)}, nil
	case "fabs":
		return Val{F: math.Abs(args[0].F)}, nil
	case "sin":
		return Val{F: math.Sin(args[0].F)}, nil
	case "cos":
		return Val{F: math.Cos(args[0].F)}, nil
	case "exp":
		return Val{F: math.Exp(args[0].F)}, nil
	case "log":
		return Val{F: math.Log(args[0].F)}, nil
	case "floor":
		return Val{F: math.Floor(args[0].F)}, nil
	case "pow":
		return Val{F: math.Pow(args[0].F, args[1].F)}, nil
	case "abs_i64":
		v := args[0].I
		if v < 0 {
			v = -v
		}
		return Val{I: v}, nil
	default:
		panic(errTrap{"unknown builtin " + name})
	}
	return Val{}, nil
}
