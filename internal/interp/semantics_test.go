package interp_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"

	_ "repro/internal/vm" // registers the "vm" engine
)

// engines resolves every registered execution engine; the regression tests
// here run each scenario on all of them so a semantics fix holds in the
// tree interpreter and the bytecode VM alike.
func engines(t *testing.T) []interp.Engine {
	t.Helper()
	var out []interp.Engine
	for _, name := range interp.EngineNames() {
		e, err := interp.EngineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	if len(out) < 2 {
		t.Fatalf("expected tree and vm engines, have %v", interp.EngineNames())
	}
	return out
}

// TestFPToInt64Saturation pins the defined float-to-int conversion: NaN and
// ±Inf go to 0, finite out-of-range values saturate. Go's own int64(f) is
// architecture-dependent for these inputs (amd64 flushes to MinInt64, arm64
// saturates), so the table below is what keeps the fuzz oracle and the
// Figure-13 step counts identical across machines.
func TestFPToInt64Saturation(t *testing.T) {
	two63 := math.Ldexp(1, 63) // 2^63: the smallest float64 >= MaxInt64
	cases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
		{0, 0},
		{1.9, 1},
		{-1.9, -1},
		{two63, math.MaxInt64},
		{math.Nextafter(two63, 0), 9223372036854774784}, // largest in-range float64
		{-two63, math.MinInt64},                         // -2^63 is exactly representable
		{math.Nextafter(-two63, math.Inf(-1)), math.MinInt64},
		{1e300, math.MaxInt64},
		{-1e300, math.MinInt64},
	}
	for _, tc := range cases {
		if got := interp.FPToInt64(tc.in); got != tc.want {
			t.Errorf("FPToInt64(%g) = %d, want %d", tc.in, got, tc.want)
		}
	}

	// The same table through an executed FPToSI, on every engine: the
	// conversion the engines run must be the one the oracle defines.
	for _, tc := range cases {
		m := ir.NewModule("fp")
		f := m.Add(ir.NewFunction("main", ir.I64, nil, nil))
		bd := ir.NewBuilder(f.NewBlock("entry"))
		bd.Ret(bd.Cast(ir.OpFPToSI, ir.ConstFloat(tc.in), ir.I64))
		for _, eng := range engines(t) {
			res, err := eng.Run(m, interp.Options{})
			if err != nil {
				t.Fatalf("%s: fptosi(%g): %v", eng.Name(), tc.in, err)
			}
			if res.Ret != tc.want {
				t.Errorf("%s: fptosi(%g) = %d, want %d", eng.Name(), tc.in, res.Ret, tc.want)
			}
		}
	}
}

// TestUnknownGlobalTrapsWithName pins the diagnosis for a module that uses a
// global it never registered: instead of silently evaluating to the null
// address and dying later as an opaque memory trap, the engines must trap
// immediately and name the global and the function.
func TestUnknownGlobalTrapsWithName(t *testing.T) {
	phantom := &ir.Global{Name: "phantom", Elem: ir.I64}
	m := ir.NewModule("g")
	f := m.Add(ir.NewFunction("main", ir.I64, nil, nil))
	bd := ir.NewBuilder(f.NewBlock("entry"))
	bd.Ret(bd.Load(phantom)) // phantom was never AddGlobal'ed
	for _, eng := range engines(t) {
		_, err := eng.Run(m, interp.Options{})
		if err == nil {
			t.Fatalf("%s: unknown global did not trap", eng.Name())
		}
		for _, want := range []string{"unknown global", "@phantom", "@main"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: trap %q does not mention %q", eng.Name(), err, want)
			}
		}
	}
}

// TestAllocGrowthCappedAtMaxMem pins the arena-growth contract: an
// allocation succeeds whenever it fits under MaxMem — even when the
// doubling growth step would overshoot the cap — and fails with a plain
// "out of memory" once the demand itself exceeds MaxMem. The local array
// below needs ~128 KiB, past the 64 KiB the arena starts with, so the
// success case forces a capped growth step.
func TestAllocGrowthCappedAtMaxMem(t *testing.T) {
	const src = "int main() { int a[16384]; a[16383] = 7; return a[16383]; }"
	mod, err := minic.CompileSource(src, "alloc")
	if err != nil {
		t.Fatal(err)
	}
	const need = 16384 * 8 // array bytes; plus scalar locals and the null page
	for _, eng := range engines(t) {
		res, err := eng.Run(mod, interp.Options{MaxMem: need + 4096})
		if err != nil {
			t.Fatalf("%s: in-budget allocation failed: %v", eng.Name(), err)
		}
		if res.Ret != 7 {
			t.Errorf("%s: ret = %d, want 7", eng.Name(), res.Ret)
		}

		_, err = eng.Run(mod, interp.Options{MaxMem: need - 8})
		if err == nil {
			t.Fatalf("%s: over-budget allocation did not fail", eng.Name())
		}
		if !strings.Contains(err.Error(), "out of memory") {
			t.Errorf("%s: error %q, want out of memory", eng.Name(), err)
		}
		if strings.Contains(err.Error(), "trap:") {
			t.Errorf("%s: out-of-memory should be a plain error, got trap %q", eng.Name(), err)
		}
	}
}
