package progen

import (
	"fmt"
	"math/rand"
)

// RandExpr builds a random well-typed integer expression over the given
// variable names. Division is guarded against zero by construction (the
// denominator is a positive literal), so the expression can only trap via
// the interpreter's step budget, never via division by zero.
//
// This is the expression generator behind both the quick tests in
// internal/minic and the statement bodies of Generate; keeping one copy
// means a grammar extension immediately widens every consumer's coverage.
func RandExpr(rng *rand.Rand, vars []string, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(200)-100)
		case 1:
			return vars[rng.Intn(len(vars))]
		default:
			return fmt.Sprintf("%d", rng.Intn(9)+1)
		}
	}
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", RandExpr(rng, vars, depth-1), RandExpr(rng, vars, depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", RandExpr(rng, vars, depth-1), RandExpr(rng, vars, depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", RandExpr(rng, vars, depth-1), RandExpr(rng, vars, depth-1))
	case 3:
		// Division guarded against zero via |d|+1.
		return fmt.Sprintf("(%s / (%d))", RandExpr(rng, vars, depth-1), rng.Intn(20)+1)
	case 4:
		return fmt.Sprintf("(%s ^ %s)", RandExpr(rng, vars, depth-1), RandExpr(rng, vars, depth-1))
	case 5:
		return fmt.Sprintf("(%s & %s)", RandExpr(rng, vars, depth-1), RandExpr(rng, vars, depth-1))
	case 6:
		return fmt.Sprintf("(%s | %s)", RandExpr(rng, vars, depth-1), RandExpr(rng, vars, depth-1))
	default:
		// The space stops "-" from fusing with a negative literal into the
		// "--" decrement token.
		return fmt.Sprintf("(- %s)", RandExpr(rng, vars, depth-1))
	}
}
