package progen_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/progen"
)

// TestGenerateDeterministic pins the seed-to-program mapping: identical seeds
// must give byte-identical sources, and GenerateSeed must agree with Generate
// over a fresh rand.Rand, since crasher replays depend on it.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := progen.GenerateSeed(seed)
		b := progen.Generate(rand.New(rand.NewSource(seed)))
		if a != b {
			t.Fatalf("seed %d: GenerateSeed and Generate disagree", seed)
		}
		if a != progen.GenerateSeed(seed) {
			t.Fatalf("seed %d: GenerateSeed is not deterministic", seed)
		}
	}
}

// TestGeneratedProgramsCompileAndRun is the generator's core contract: every
// seed yields a program that parses, compiles to a verifying module, and runs
// to completion without trapping under a generous step budget.
func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	const n = 150
	for seed := int64(0); seed < n; seed++ {
		src := progen.GenerateSeed(seed)
		m, err := minic.CompileSource(src, "fuzz")
		if err != nil {
			t.Fatalf("seed %d: compile: %v\nsource:\n%s", seed, err, src)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: verify: %v\nsource:\n%s", seed, err, src)
		}
		res, err := interp.Run(m, interp.Options{MaxSteps: 50_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v\nsource:\n%s", seed, err, src)
		}
		if res.Ret < 0 || res.Ret >= 1000000007 {
			t.Fatalf("seed %d: main returned %d, want [0, 1000000007)", seed, res.Ret)
		}
	}
}

// TestGeneratedProgramsUseLanguageSurface checks the corpus actually contains
// the constructs the fuzzer claims to cover — a grammar regression that
// silently stopped emitting loops would otherwise go unnoticed.
func TestGeneratedProgramsUseLanguageSurface(t *testing.T) {
	var all strings.Builder
	for seed := int64(0); seed < 300; seed++ {
		all.WriteString(progen.GenerateSeed(seed))
	}
	corpus := all.String()
	for _, want := range []string{
		"for (", "while (", "if (", "switch (", "do {",
		"int ", "float ", "char ", "struct ", "[", "print(",
		"*p", "&", "return", "break", "continue", "?",
	} {
		if !strings.Contains(corpus, want) {
			t.Errorf("300-seed corpus never contains %q", want)
		}
	}
}

// TestRandExprCompiles keeps the promoted expression generator honest: its
// output must always parse and evaluate inside a trivial harness program.
func TestRandExprCompiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		expr := progen.RandExpr(rng, []string{"a", "b", "c"}, 4)
		src := "int main() { int a = 3; int b = -5; int c = 11; return (" +
			expr + ") % 97; }"
		m, err := minic.CompileSource(src, "expr")
		if err != nil {
			t.Fatalf("expr %q: %v", expr, err)
		}
		if _, err := interp.Run(m, interp.Options{MaxSteps: 1_000_000}); err != nil {
			t.Fatalf("expr %q: run: %v", expr, err)
		}
	}
}
