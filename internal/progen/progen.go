// Package progen generates seeded, deterministic, well-typed MiniC programs
// for differential testing of the compiler, the optimization passes and the
// obfuscators. Programs are biased away from undefined or unstable behaviour
// by construction so that any observable divergence after a transformation is
// a transformation bug, not generator noise:
//
//   - every loop has a constant bound and every recursion a decreasing
//     guard, so programs terminate well under the interpreter step budget;
//   - every division or remainder denominator is a positive literal or an
//     expression forced odd with "| 1", so no division traps;
//   - every array index is a loop induction variable bounded by the array
//     length or an expression reduced modulo the length, so no memory traps;
//   - every local — scalar, array element, struct field — is initialized
//     before use, so behaviour never depends on stack reuse patterns that a
//     pass (mem2reg, inline) would legally change.
//
// The same seed always yields the same program, which keeps fuzz campaigns
// replayable and shrunk crashers reproducible.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the shape of generated programs.
type Config struct {
	// MaxHelpers is the number of helper functions besides main (0..).
	MaxHelpers int
	// MaxStmts is the statement budget of each function body.
	MaxStmts int
	// MaxDepth caps control-flow nesting (loops in loops in ifs...).
	MaxDepth int
	// Structs, Floats, Pointers and Globals gate the corresponding
	// features; all default to on.
	Structs  bool
	Floats   bool
	Pointers bool
	Globals  bool
}

// DefaultConfig is the full-featured shape used by fuzz campaigns.
func DefaultConfig() Config {
	return Config{MaxHelpers: 3, MaxStmts: 10, MaxDepth: 3,
		Structs: true, Floats: true, Pointers: true, Globals: true}
}

// Generate produces one program with the default configuration.
func Generate(rng *rand.Rand) string { return GenerateCfg(rng, DefaultConfig()) }

// GenerateSeed produces the program for one campaign seed. It is the
// canonical seed-to-program mapping shared by `arena fuzz`, the difftest
// harness and the Go fuzz targets, so a crasher's seed replays everywhere.
func GenerateSeed(seed int64) string {
	return Generate(rand.New(rand.NewSource(seed)))
}

// GenerateCfg produces one program under the given bounds.
func GenerateCfg(rng *rand.Rand, cfg Config) string {
	if cfg.MaxStmts <= 0 {
		cfg.MaxStmts = 6
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 2
	}
	g := &pg{rng: rng, cfg: cfg}
	g.program()
	return g.b.String()
}

// arr is an in-scope int array.
type arr struct {
	name string
	n    int
}

// helper is a callable helper function.
type helper struct {
	name   string
	params int // int parameters
}

// pg carries the generator state for one program.
type pg struct {
	rng *rand.Rand
	cfg Config
	b   strings.Builder

	nameCtr int
	indent  int

	// Scopes. Only function-top-level declarations enter these pools, so
	// everything in them stays visible for the rest of the body.
	ints   []string // readable+writable int lvalues (vars, fields)
	ro     []string // read-only ints (loop induction variables): writing one
	// from a random statement would break the in-bounds-index and
	// termination guarantees, so they never become assignment targets
	floats []string
	arrays []arr

	intHelpers  []helper
	ptrHelper   string // void(int*, int)
	floatHelper string // float(float)
	recHelper   string // int(int, int) guarded recursion
	structName  string // declared struct tag, "" if none

	loopDepth int
}

func (g *pg) name(prefix string) string {
	g.nameCtr++
	return fmt.Sprintf("%s%d", prefix, g.nameCtr-1)
}

func (g *pg) line(format string, args ...interface{}) {
	g.b.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// program emits the whole translation unit.
func (g *pg) program() {
	if g.cfg.Structs && g.rng.Intn(2) == 0 {
		g.structName = g.name("S")
		g.line("struct %s { int x; int y; float w; };", g.structName)
	}
	if g.cfg.Globals {
		g.emitGlobals()
	}
	nh := 0
	if g.cfg.MaxHelpers > 0 {
		nh = g.rng.Intn(g.cfg.MaxHelpers + 1)
	}
	for i := 0; i < nh; i++ {
		g.emitHelper()
	}
	g.emitMain()
}

func (g *pg) emitGlobals() {
	for i := g.rng.Intn(3); i > 0; i-- {
		n := g.name("g")
		g.line("int %s = %d;", n, g.rng.Intn(41)-20)
		g.ints = append(g.ints, n)
	}
	if g.rng.Intn(2) == 0 {
		n := g.name("ga")
		dim := g.rng.Intn(7) + 4
		if g.rng.Intn(2) == 0 {
			vals := make([]string, dim)
			for i := range vals {
				vals[i] = fmt.Sprintf("%d", g.rng.Intn(90)-30)
			}
			g.line("int %s[%d] = {%s};", n, dim, strings.Join(vals, ", "))
		} else {
			// Globals are zero-initialized, so an uninitialized global
			// array is still well-defined.
			g.line("int %s[%d];", n, dim)
		}
		g.arrays = append(g.arrays, arr{n, dim})
	}
	if g.cfg.Floats && g.rng.Intn(3) == 0 {
		n := g.name("gf")
		g.line("float %s = %d.%d;", n, g.rng.Intn(9), g.rng.Intn(100))
		g.floats = append(g.floats, n)
	}
}

// emitHelper emits one helper function of a random kind and registers it.
func (g *pg) emitHelper() {
	switch k := g.rng.Intn(4); {
	case k == 0 && g.cfg.Pointers && g.ptrHelper == "":
		n := g.name("bump")
		g.line("void %s(int *p, int d) {", n)
		g.indent++
		body := []string{"*p = *p + d;", "*p = *p ^ (d >> 1);", "if (d > 0) { *p = *p - 1; }"}
		g.line("%s", body[g.rng.Intn(len(body))])
		g.indent--
		g.line("}")
		g.ptrHelper = n
	case k == 1 && g.cfg.Floats && g.floatHelper == "":
		n := g.name("fh")
		g.line("float %s(float x) {", n)
		g.indent++
		switch g.rng.Intn(3) {
		case 0:
			g.line("return x * %d.5 + %d.25;", g.rng.Intn(3)+1, g.rng.Intn(4))
		case 1:
			g.line("return sqrt(fabs(x)) + %d.0;", g.rng.Intn(5))
		default:
			g.line("if (x < 0.0) { return - x; }\nreturn x / %d.0;", g.rng.Intn(7)+2)
		}
		g.indent--
		g.line("}")
		g.floatHelper = n
	case k == 2 && g.recHelper == "":
		n := g.name("rec")
		g.line("int %s(int n, int acc) {", n)
		g.indent++
		g.line("if (n <= 0) { return acc; }")
		g.line("return %s(n - 1, acc + n %% %d + %d);", n, g.rng.Intn(7)+2, g.rng.Intn(5))
		g.indent--
		g.line("}")
		g.recHelper = n
	default:
		n := g.name("h")
		params := g.rng.Intn(2) + 1
		decl := make([]string, params)
		vars := make([]string, params)
		for i := range decl {
			vars[i] = fmt.Sprintf("p%d", i)
			decl[i] = "int " + vars[i]
		}
		g.line("int %s(%s) {", n, strings.Join(decl, ", "))
		g.indent++
		// Helpers get a small straight-line body over their parameters:
		// bounded loops here would multiply the dynamic cost of every call
		// site, so keep the interesting control flow in main.
		for i := g.rng.Intn(2) + 1; i > 0; i-- {
			g.line("%s = %s;", vars[g.rng.Intn(params)], g.safeIntExpr(vars, 2))
		}
		g.line("return %s;", g.safeIntExpr(vars, 2))
		g.indent--
		g.line("}")
		g.intHelpers = append(g.intHelpers, helper{n, params})
	}
}

func (g *pg) emitMain() {
	g.line("int main() {")
	g.indent++
	g.emitLocals()
	for i := g.rng.Intn(g.cfg.MaxStmts/2+1) + g.cfg.MaxStmts/2; i > 0; i-- {
		g.stmt(g.cfg.MaxDepth)
	}
	g.line("return ((%s) %% 1000000007 + 1000000007) %% 1000000007;", g.intExpr(3))
	g.indent--
	g.line("}")
}

// emitLocals declares main's variable pool, every one initialized.
func (g *pg) emitLocals() {
	for i := g.rng.Intn(3) + 2; i > 0; i-- {
		n := g.name("v")
		g.line("int %s = %d;", n, g.rng.Intn(61)-30)
		g.ints = append(g.ints, n)
	}
	if g.rng.Intn(2) == 0 {
		n := g.name("a")
		dim := g.rng.Intn(7) + 4
		if g.rng.Intn(2) == 0 {
			vals := make([]string, dim)
			for i := range vals {
				vals[i] = fmt.Sprintf("%d", g.rng.Intn(50)-10)
			}
			g.line("int %s[%d] = {%s};", n, dim, strings.Join(vals, ", "))
		} else {
			iv := g.name("i")
			g.line("int %s[%d];", n, dim)
			g.line("for (int %s = 0; %s < %d; %s++) { %s[%s] = %s * %d - %d; }",
				iv, iv, dim, iv, n, iv, iv, g.rng.Intn(5)+1, g.rng.Intn(7))
		}
		g.arrays = append(g.arrays, arr{n, dim})
	}
	if g.rng.Intn(3) == 0 {
		n := g.name("c")
		g.line("char %s = '%c';", n, byte('a'+g.rng.Intn(26)))
		g.ints = append(g.ints, n) // chars promote in int arithmetic
	}
	if g.cfg.Floats && g.rng.Intn(2) == 0 {
		n := g.name("f")
		g.line("float %s = %d.%d;", n, g.rng.Intn(5), g.rng.Intn(100))
		g.floats = append(g.floats, n)
	}
	if g.structName != "" {
		n := g.name("s")
		g.line("struct %s %s;", g.structName, n)
		g.line("%s.x = %d;", n, g.rng.Intn(20))
		g.line("%s.y = %d;", n, g.rng.Intn(20)-10)
		g.line("%s.w = %d.5;", n, g.rng.Intn(4))
		g.ints = append(g.ints, n+".x", n+".y")
		g.floats = append(g.floats, n+".w")
		if g.cfg.Pointers && g.rng.Intn(2) == 0 {
			g.structVarPtrHelper(n)
		}
	}
}

// structVarPtrHelper is emitted lazily into main via a pre-declared helper;
// since helpers must precede main in the source, we instead fold the
// pointer-to-struct access into plain field writes here.
func (g *pg) structVarPtrHelper(n string) {
	g.line("%s.x = %s.x + %s.y;", n, n, n)
}

// stmt emits one statement; depth bounds control-flow nesting.
func (g *pg) stmt(depth int) {
	choices := []func(int){g.assignStmt, g.assignStmt, g.printStmt, g.callStmt, g.arrayStmt}
	if depth > 0 {
		choices = append(choices, g.ifStmt, g.forStmt, g.whileStmt, g.switchStmt, g.doWhileStmt)
		// Weight loops and branches up: they are what passes chew on.
		choices = append(choices, g.ifStmt, g.forStmt)
	}
	choices[g.rng.Intn(len(choices))](depth)
}

func (g *pg) assignStmt(int) {
	if len(g.floats) > 0 && g.rng.Intn(4) == 0 {
		f := g.floats[g.rng.Intn(len(g.floats))]
		g.line("%s = %s;", f, g.floatExpr(2))
		return
	}
	v := g.ints[g.rng.Intn(len(g.ints))]
	if op := g.rng.Intn(4); op > 0 {
		g.line("%s %s= %s;", v, []string{"+", "-", "^"}[op-1], g.intExpr(2))
		return
	}
	g.line("%s = %s;", v, g.intExpr(3))
}

func (g *pg) printStmt(int) {
	if len(g.floats) > 0 && g.rng.Intn(4) == 0 {
		g.line("print(%s);", g.floats[g.rng.Intn(len(g.floats))])
		return
	}
	g.line("print(%s);", g.intExpr(2))
}

func (g *pg) callStmt(depth int) {
	switch {
	case g.ptrHelper != "" && g.rng.Intn(2) == 0:
		g.line("%s(&%s, %s);", g.ptrHelper, g.plainIntVar(), g.intExpr(1))
	case g.recHelper != "" && g.rng.Intn(2) == 0:
		g.line("%s = %s(%d, %s);", g.ints[g.rng.Intn(len(g.ints))],
			g.recHelper, g.rng.Intn(12)+1, g.intExpr(1))
	case g.floatHelper != "" && len(g.floats) > 0 && g.rng.Intn(2) == 0:
		g.line("%s = %s(%s);", g.floats[g.rng.Intn(len(g.floats))],
			g.floatHelper, g.floatExpr(1))
	case len(g.intHelpers) > 0:
		h := g.intHelpers[g.rng.Intn(len(g.intHelpers))]
		args := make([]string, h.params)
		for i := range args {
			args[i] = g.intExpr(1)
		}
		g.line("%s = %s(%s);", g.ints[g.rng.Intn(len(g.ints))], h.name, strings.Join(args, ", "))
	default:
		g.assignStmt(depth)
	}
}

// plainIntVar returns an addressable int variable (no struct fields — &s.x
// is legal but keeps the generated shapes simpler to shrink).
func (g *pg) plainIntVar() string {
	for tries := 0; tries < 8; tries++ {
		v := g.ints[g.rng.Intn(len(g.ints))]
		if !strings.Contains(v, ".") {
			return v
		}
	}
	return g.ints[0]
}

func (g *pg) arrayStmt(int) {
	if len(g.arrays) == 0 {
		g.assignStmt(0)
		return
	}
	a := g.arrays[g.rng.Intn(len(g.arrays))]
	idx := g.safeIndex(a)
	g.line("%s[%s] = %s;", a.name, idx, g.intExpr(2))
}

// safeIndex renders an in-bounds index expression for a.
func (g *pg) safeIndex(a arr) string {
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("%d", g.rng.Intn(a.n))
	}
	// ((e % n) + n) % n is in [0, n) for any signed e.
	return fmt.Sprintf("((%s %% %d + %d) %% %d)", g.intExpr(1), a.n, a.n, a.n)
}

func (g *pg) cond() string {
	a, b := g.intExpr(1), g.intExpr(1)
	op := []string{"<", ">", "<=", ">=", "==", "!="}[g.rng.Intn(6)]
	c := fmt.Sprintf("%s %s %s", a, op, b)
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%s && %s %s %s", c, g.intExpr(1),
			[]string{"<", "!="}[g.rng.Intn(2)], g.intExpr(1))
	case 1:
		return fmt.Sprintf("%s || %s == %s", c, g.intExpr(1), g.intExpr(1))
	default:
		return c
	}
}

func (g *pg) ifStmt(depth int) {
	g.line("if (%s) {", g.cond())
	g.indent++
	for i := g.rng.Intn(2) + 1; i > 0; i-- {
		g.stmt(depth - 1)
	}
	g.indent--
	if g.rng.Intn(2) == 0 {
		g.line("} else {")
		g.indent++
		g.stmt(depth - 1)
		g.indent--
	}
	g.line("}")
}

func (g *pg) forStmt(depth int) {
	iv := g.name("i")
	bound := g.rng.Intn(9) + 2
	g.line("for (int %s = 0; %s < %d; %s++) {", iv, iv, bound, iv)
	g.loopBody(depth, iv, bound)
	g.line("}")
}

func (g *pg) whileStmt(depth int) {
	iv := g.name("t")
	bound := g.rng.Intn(7) + 2
	g.line("int %s = 0;", iv)
	g.line("while (%s < %d) {", iv, bound)
	g.indent++
	g.loopInner(depth, iv, bound, false)
	g.line("%s = %s + 1;", iv, iv)
	g.indent--
	g.line("}")
}

func (g *pg) doWhileStmt(depth int) {
	iv := g.name("d")
	bound := g.rng.Intn(5) + 1
	g.line("int %s = 0;", iv)
	g.line("do {")
	g.indent++
	g.loopInner(depth, iv, bound, false)
	g.line("%s++;", iv)
	g.indent--
	g.line("} while (%s < %d);", iv, bound)
}

// loopBody emits a loop body between braces (indentation handled here).
func (g *pg) loopBody(depth int, iv string, bound int) {
	g.indent++
	g.loopInner(depth, iv, bound, true)
	g.indent--
}

// loopInner emits 1-2 statements that may use the induction variable, plus
// an occasional guarded break/continue.
func (g *pg) loopInner(depth int, iv string, bound int, isFor bool) {
	g.loopDepth++
	defer func() { g.loopDepth-- }()
	// The induction variable is readable in the body but never a write
	// target; see the ro field comment.
	g.ro = append(g.ro, iv)
	defer func() { g.ro = g.ro[:len(g.ro)-1] }()
	if len(g.arrays) > 0 && g.rng.Intn(2) == 0 {
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		idx := fmt.Sprintf("%s %% %d", iv, a.n)
		if bound <= a.n {
			idx = iv
		}
		g.line("%s[%s] = %s[%s] + %s;", a.name, idx, a.name, idx, g.intExpr(1))
	}
	for i := g.rng.Intn(2) + 1; i > 0; i-- {
		g.stmt(depth - 1)
	}
	if g.rng.Intn(4) == 0 {
		// continue only in for loops: in while/do-while the counter
		// increment sits at the end of the body, so skipping it would
		// loop forever.
		kw := "continue"
		if !isFor || g.rng.Intn(2) == 0 {
			kw = "break"
		}
		g.line("if (%s == %d) { %s; }", iv, g.rng.Intn(bound), kw)
	}
}

func (g *pg) switchStmt(depth int) {
	g.line("switch (%s %% %d) {", g.plainIntVar(), g.rng.Intn(3)+2)
	ncases := g.rng.Intn(3) + 1
	for i := 0; i < ncases; i++ {
		// Negative remainders fall through to default, which is fine.
		g.line("case %d: {", i)
		g.indent++
		g.stmt(depth - 1)
		g.indent--
		g.line("} break;")
	}
	if g.rng.Intn(2) == 0 {
		g.line("default: {")
		g.indent++
		g.stmt(depth - 1)
		g.indent--
		g.line("}")
	}
	g.line("}")
}

// intExpr renders a random int expression over the in-scope int pool, plus
// array reads, float casts, ternaries and calls at low probability.
func (g *pg) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.intLeaf()
	}
	switch g.rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / (%s | 1))", g.intExpr(depth-1), g.intExpr(depth-1))
	case 4:
		return fmt.Sprintf("(%s %% (%s | 1))", g.intExpr(depth-1), g.intExpr(depth-1))
	case 5:
		return fmt.Sprintf("(%s ^ %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 6:
		return fmt.Sprintf("(%s & %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 7:
		return fmt.Sprintf("(%s | %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 8:
		return fmt.Sprintf("(%s << %d)", g.intExpr(depth-1), g.rng.Intn(7))
	case 9:
		return fmt.Sprintf("(%s >> %d)", g.intExpr(depth-1), g.rng.Intn(7))
	case 10:
		return fmt.Sprintf("(%s ? %s : %s)", g.cond(), g.intExpr(depth-1), g.intExpr(depth-1))
	default:
		if len(g.floats) > 0 && g.rng.Intn(3) == 0 {
			// Floats stay small by construction, so fptosi is exact enough
			// to be deterministic across transforms.
			return fmt.Sprintf("(int)(%s)", g.floatExpr(1))
		}
		return fmt.Sprintf("(- %s)", g.intExpr(depth-1))
	}
}

func (g *pg) intLeaf() string {
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(200)-100)
	case 1:
		if len(g.arrays) > 0 {
			a := g.arrays[g.rng.Intn(len(g.arrays))]
			return fmt.Sprintf("%s[%s]", a.name, g.safeIndex(a))
		}
		fallthrough
	case 2:
		if len(g.ro) > 0 {
			return g.ro[g.rng.Intn(len(g.ro))]
		}
		fallthrough
	default:
		return g.ints[g.rng.Intn(len(g.ints))]
	}
}

// safeIntExpr is intExpr restricted to an explicit variable set (used inside
// helper bodies, where main's pool is not in scope).
func (g *pg) safeIntExpr(vars []string, depth int) string {
	return RandExpr(g.rng, vars, depth)
}

func (g *pg) floatExpr(depth int) string {
	if len(g.floats) == 0 || depth <= 0 || g.rng.Intn(3) == 0 {
		if len(g.floats) > 0 && g.rng.Intn(2) == 0 {
			return g.floats[g.rng.Intn(len(g.floats))]
		}
		return fmt.Sprintf("%d.%d", g.rng.Intn(6), g.rng.Intn(100))
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / %d.5)", g.floatExpr(depth-1), g.rng.Intn(8)+1)
	case 4:
		return fmt.Sprintf("fabs(%s)", g.floatExpr(depth-1))
	default:
		return fmt.Sprintf("(float)(%s)", g.intExpr(1))
	}
}
