package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/difftest"
	"repro/internal/progcache"
)

// cmdFuzz runs a differential-fuzzing campaign: seeded generated programs
// through every registered transform, checked against the O0 interpreter
// oracle. Exits nonzero when any cell breaks semantics, writing shrunk
// repros to -crashers.
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	n := fs.Int("n", 200, "programs per campaign batch")
	seed := fs.Int64("seed", 1, "base seed; program i uses seed+i")
	dur := fs.Duration("dur", 0,
		"keep running batches (advancing the seed) until this much time has passed (0 = one batch)")
	workers := fs.Int("j", 0, "parallel workers (0 = all cores)")
	set := fs.String("set", "module",
		"transform set: smoke (passes+pipelines+obfuscators), module (+composed), all (+source strategies), or one transform name")
	small := fs.Bool("small", false,
		"generate smaller programs (the fuzz-smoke shape: cheaper cells, higher program throughput)")
	crashers := fs.String("crashers", "testdata/crashers",
		"directory for shrunk failing programs (empty = don't write)")
	noShrink := fs.Bool("no-shrink", false, "report failures unshrunk (faster triage turnaround)")
	engine := fs.String("engine", "tree",
		"execution engine for the transformed side (tree = reference interpreter, vm = compiled bytecode; vm is also cross-checked bit-for-bit against tree)")
	thaw := fs.Bool("thaw", false,
		"run the clone-vs-thaw equivalence campaign instead: each module-level transform is applied to a deep clone and to a thawed flat-view copy with the same seed, and the two must match bit-for-bit")
	verbose := fs.Bool("v", false, "per-transform table + obs footer")
	of := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := of.begin("fuzz", fs, *seed, *verbose)
	if err != nil {
		return err
	}
	if *thaw {
		return fuzzThaw(rec, *n, *seed, *workers, *set, *small)
	}

	cfg := difftest.CampaignConfig{
		N: *n, Seed: *seed, Workers: *workers, Set: *set,
		CrashersDir: *crashers, Shrink: !*noShrink, Engine: *engine,
	}
	if *small {
		cfg.Gen = difftest.SmokeGen()
	}

	deadline := time.Now().Add(*dur)
	total := &difftest.CampaignResult{Stats: map[string]*difftest.TransformStats{}}
	batches := 0
	for {
		res, err := difftest.RunCampaign(cfg)
		if err != nil {
			return err
		}
		merge(total, res)
		batches++
		// One batch when -dur is zero; otherwise advance the seed space and
		// go again until the deadline. Reset the compile cache between
		// batches so a long campaign's memory stays flat.
		if *dur == 0 || !time.Now().Before(deadline) {
			break
		}
		cfg.Seed += int64(cfg.N)
		progcache.Reset()
	}

	for _, name := range total.TransformNames() {
		st := total.Stats[name]
		cells := float64(st.Equal + st.TrapSkipped + st.Mismatch + st.VerifyFail + st.Errors)
		rec.man.AddCell("fuzz/"+name, "failures",
			[]float64{float64(st.Failures())})
		if *verbose {
			fmt.Printf("%-14s %6.0f cells  equal=%d trap-skipped=%d failures=%d  %v\n",
				name, cells, st.Equal, st.TrapSkipped, st.Failures(),
				time.Duration(st.Nanos).Round(time.Millisecond))
		}
	}
	rec.man.AddCell("fuzz/programs", "programs", []float64{float64(total.Programs)})
	if err := rec.finish(); err != nil {
		return err
	}

	fmt.Printf("fuzz: %d programs x %d transforms in %d batch(es): %d failures, %d oracle errors\n",
		total.Programs, len(total.Stats), batches, total.TotalFailures(), total.OracleErrs)
	if total.TotalFailures() > 0 || total.OracleErrs > 0 {
		for _, f := range total.Failures {
			fmt.Fprintf(os.Stderr, "FAIL seed=%d transform=%s verdict=%s: %.200s\n",
				f.Seed, f.Transform, f.Verdict, f.Detail)
		}
		if *crashers != "" {
			fmt.Fprintf(os.Stderr, "shrunk repros written to %s\n", *crashers)
		}
		return fmt.Errorf("%d semantics-breaking cells", total.TotalFailures()+total.OracleErrs)
	}
	return nil
}

// fuzzThaw runs the clone-vs-thaw differential campaign: the thaw-derived
// copy of every cached module must be indistinguishable from the deep-clone
// oracle under every registered module-level transform. Exits nonzero on any
// divergence.
func fuzzThaw(rec *runRecorder, n int, seed int64, workers int, set string, small bool) error {
	cfg := difftest.ThawEquivConfig{N: n, Seed: seed, Workers: workers, Set: set}
	if small {
		cfg.Gen = difftest.SmokeGen()
	}
	res, err := difftest.RunThawEquivalence(cfg)
	if err != nil {
		return err
	}
	rec.man.AddCell("fuzz/thaw", "cells", []float64{float64(res.Cells)})
	rec.man.AddCell("fuzz/thaw", "failures", []float64{float64(len(res.Failures))})
	if err := rec.finish(); err != nil {
		return err
	}
	fmt.Printf("fuzz -thaw: %d programs x %d transforms = %d clone-vs-thaw cells: %d failures, %d oracle errors\n",
		res.Programs, res.Transforms, res.Cells, len(res.Failures), res.OracleErrs)
	if len(res.Failures) > 0 || res.OracleErrs > 0 {
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "FAIL seed=%d transform=%s: %.200s\n", f.Seed, f.Transform, f.Detail)
		}
		return fmt.Errorf("%d clone-vs-thaw divergences", len(res.Failures))
	}
	return nil
}

// merge folds one batch's campaign result into the running total.
func merge(total, batch *difftest.CampaignResult) {
	total.Programs += batch.Programs
	total.OracleErrs += batch.OracleErrs
	total.Failures = append(total.Failures, batch.Failures...)
	for name, st := range batch.Stats {
		t := total.Stats[name]
		if t == nil {
			t = &difftest.TransformStats{}
			total.Stats[name] = t
		}
		t.Equal += st.Equal
		t.TrapSkipped += st.TrapSkipped
		t.Mismatch += st.Mismatch
		t.EngineDiverged += st.EngineDiverged
		t.VerifyFail += st.VerifyFail
		t.Errors += st.Errors
		t.Nanos += st.Nanos
	}
}
