package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/serve"
)

// cmdGateway fronts a fleet of serve replicas with the sharded gateway
// tier: consistent-hash routing, health probing, retry/hedge, and
// fleet-wide snapshot hot-swap. The fleet is either an existing set of
// addresses (-replicas) or spawned locally (-spawn N), one child `arena
// serve` process per replica sharing one pre-trained snapshot directory:
//
//	arena gateway -addr 127.0.0.1:8090 -spawn 3 -snapshots runs/snap -models rf
//	arena gateway -replicas 10.0.0.1:8080,10.0.0.2:8080
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "gateway listen address")
	replicas := fs.String("replicas", "", "comma-separated replica addresses (mutually exclusive with -spawn)")
	spawn := fs.Int("spawn", 0, "spawn this many local serve replicas on free ports")
	snapDir := fs.String("snapshots", "snapshots", "snapshot directory shared by spawned replicas")
	models := fs.String("models", "rf,lr", "models each spawned replica serves")
	embedding := fs.String("embedding", "histogram", "embedding for spawned replicas")
	classes := fs.Int("classes", 8, "problem classes when training missing snapshots")
	per := fs.Int("per", 12, "solutions per class when training missing snapshots")
	seed := fs.Int64("seed", 1, "training seed for missing snapshots")
	cacheCap := fs.Int("cache-cap", -1, "replica -cache-cap passthrough (-1 = replica default)")
	retries := fs.Int("retries", 3, "max attempts per request, each on a distinct replica")
	hedge := fs.Duration("hedge", 0, "hedge delay before a speculative second attempt (0 = default, negative disables)")
	probe := fs.Duration("probe", 250*time.Millisecond, "replica /healthz polling period")
	cooldown := fs.Duration("cooldown", 500*time.Millisecond, "park duration after a replica answers 429/503 or fails")
	maxInFlight := fs.Int("max-inflight", 1024, "admitted requests before the gateway answers 429")
	timeout := fs.Duration("timeout", 15*time.Second, "end-to-end request budget, retries and hedges included")
	verbose := fs.Bool("v", false, "print the obs footer after shutdown")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*spawn > 0) == (*replicas != "") {
		return fmt.Errorf("gateway: need exactly one of -spawn or -replicas")
	}
	rec, err := o.begin("gateway", fs, *seed, *verbose)
	if err != nil {
		return err
	}

	var addrs []string
	var sup *replicaSupervisor
	stopChildren := func() {
		if sup != nil {
			sup.stop()
		}
	}
	if *spawn > 0 {
		// Train once up front so the children race neither each other nor
		// the filesystem: every replica cold-loads the same snapshot files.
		if _, _, err := loadOrTrainSnapshots(*snapDir, splitNames(*models), *embedding, *classes, *per, *seed); err != nil {
			return err
		}
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("gateway: locate own binary: %w", err)
		}
		sup = newReplicaSupervisor(self)
		for i := 0; i < *spawn; i++ {
			port, err := freePort()
			if err != nil {
				stopChildren()
				return fmt.Errorf("gateway: replica %d: %w", i, err)
			}
			replicaAddr := "127.0.0.1:" + strconv.Itoa(port)
			cargs := []string{"serve",
				"-addr", replicaAddr,
				"-snapshots", *snapDir,
				"-models", *models,
				"-embedding", *embedding,
				"-classes", strconv.Itoa(*classes),
				"-per", strconv.Itoa(*per),
				"-seed", strconv.FormatInt(*seed, 10),
			}
			if *cacheCap >= 0 {
				cargs = append(cargs, "-cache-cap", strconv.Itoa(*cacheCap))
			}
			if err := sup.launch(replicaAddr, cargs); err != nil {
				stopChildren()
				return fmt.Errorf("gateway: spawn replica %d: %w", i, err)
			}
			addrs = append(addrs, replicaAddr)
		}
		for _, a := range addrs {
			if err := serve.WaitReady(context.Background(), "http://"+a, 60*time.Second); err != nil {
				stopChildren()
				return fmt.Errorf("gateway: replica %s never became ready: %w", a, err)
			}
		}
	} else {
		for _, part := range strings.Split(*replicas, ",") {
			if a := strings.TrimSpace(part); a != "" {
				addrs = append(addrs, a)
			}
		}
	}

	gw, err := gateway.New(gateway.Config{
		Replicas:       addrs,
		MaxAttempts:    *retries,
		HedgeDelay:     *hedge,
		ProbeInterval:  *probe,
		Cooldown:       *cooldown,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
	})
	if err != nil {
		stopChildren()
		return err
	}
	bound, err := gw.Start(*addr)
	if err != nil {
		stopChildren()
		return err
	}
	fmt.Fprintf(os.Stderr, "gateway on http://%s fronting %d replicas (POST /v1/classify /v1/transform, PUT /v1/models/{m}, GET /healthz /metricz)\n",
		bound, len(addrs))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "draining gateway...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(drainCtx); err != nil {
		stopChildren()
		return fmt.Errorf("gateway: drain: %w", err)
	}
	stopChildren()
	fmt.Fprintln(os.Stderr, "drained")
	return rec.finish()
}

const (
	// replicaBackoffBase is the delay before the first respawn of a dead
	// replica; each consecutive crash doubles it up to replicaBackoffCap,
	// and a child that stays up replicaBackoffReset earns a fresh base.
	replicaBackoffBase  = 250 * time.Millisecond
	replicaBackoffCap   = 8 * time.Second
	replicaBackoffReset = 30 * time.Second
)

// replicaSupervisor keeps spawned serve replicas alive: every child that
// exits without the supervisor having been stopped is respawned on the SAME
// address (the gateway's ring position and probe target stay valid) after a
// doubling backoff, so a crash-looping replica cannot melt the host while a
// one-off kill rejoins the fleet in a quarter second.
type replicaSupervisor struct {
	self string // path to our own binary; children are `arena serve ...`

	mu       sync.Mutex
	stopped  bool
	children map[string]*exec.Cmd // live child per replica address
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

func newReplicaSupervisor(self string) *replicaSupervisor {
	return &replicaSupervisor{
		self:     self,
		children: make(map[string]*exec.Cmd),
		stopCh:   make(chan struct{}),
	}
}

// launch starts one replica and its monitor goroutine.
func (s *replicaSupervisor) launch(addr string, args []string) error {
	cmd, err := s.spawn(addr, args)
	if err != nil {
		return err
	}
	s.wg.Add(1)
	go s.monitor(addr, args, cmd)
	return nil
}

// spawn starts the child and registers it so stop() can signal it. A spawn
// that races a concurrent stop() is terminated immediately.
func (s *replicaSupervisor) spawn(addr string, args []string) (*exec.Cmd, error) {
	cmd := exec.Command(s.self, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
		return nil, fmt.Errorf("supervisor stopped")
	}
	s.children[addr] = cmd
	s.mu.Unlock()
	fmt.Fprintf(os.Stderr, "spawned replica http://%s (pid %d)\n", addr, cmd.Process.Pid)
	return cmd, nil
}

// monitor owns one replica address: it waits for the current child, and —
// unless the supervisor is stopping — respawns it after the current backoff.
func (s *replicaSupervisor) monitor(addr string, args []string, cmd *exec.Cmd) {
	defer s.wg.Done()
	backoff := replicaBackoffBase
	for {
		start := time.Now()
		var werr error
		if cmd != nil {
			werr = cmd.Wait()
		}
		s.mu.Lock()
		stopped := s.stopped
		delete(s.children, addr)
		s.mu.Unlock()
		if stopped {
			return
		}
		if cmd != nil && time.Since(start) >= replicaBackoffReset {
			backoff = replicaBackoffBase
		}
		fmt.Fprintf(os.Stderr, "gateway: replica http://%s exited (%v); respawning in %v\n", addr, werr, backoff)
		select {
		case <-s.stopCh:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > replicaBackoffCap {
			backoff = replicaBackoffCap
		}
		var err error
		if cmd, err = s.spawn(addr, args); err != nil {
			// Spawn failures (stop race, fork error) retry on the next
			// backoff tick; the stopped check above ends the loop.
			cmd = nil
		}
	}
}

// stop terminates every live child and waits for the monitors to drain.
// Children get SIGTERM so serve's graceful drain runs.
func (s *replicaSupervisor) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stopCh)
	live := make([]*exec.Cmd, 0, len(s.children))
	for _, c := range s.children {
		live = append(live, c)
	}
	s.mu.Unlock()
	for _, c := range live {
		_ = c.Process.Signal(syscall.SIGTERM)
	}
	s.wg.Wait()
}

// freePort asks the kernel for an unused loopback port. There is a window
// between Close and the child's Listen, but replicas come up one at a time
// immediately after, so in practice the reservation holds.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port, nil
}

// cmdPush hot-swaps a model snapshot through a gateway (fan-out to every
// replica) or a single serve instance:
//
//	arena push -addr http://127.0.0.1:8090 -model rf -snap runs/snap/rf.snap
func cmdPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8090", "gateway or serve base URL")
	model := fs.String("model", "", "model name to swap (required)")
	snap := fs.String("snap", "", "path to the .snap file to push (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" || *snap == "" {
		return fmt.Errorf("push: -model and -snap are required")
	}
	data, err := os.ReadFile(*snap)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req, err := http.NewRequest(http.MethodPut,
		base+"/v1/models/"+url.PathEscape(*model), strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	fmt.Printf("%s", body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("push: %s answered %d", base, resp.StatusCode)
	}
	return nil
}
