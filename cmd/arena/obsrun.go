package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/progcache"
)

// obsFlags are the observability flags every arena command accepts: -out
// emits a JSON run manifest, -debug-addr serves expvar + pprof for live
// profiling of long runs.
type obsFlags struct {
	out       string
	debugAddr string
}

func addObs(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.out, "out", "",
		`write a JSON run manifest to this path ("auto" = runs/<cmd>-<timestamp>.json)`)
	fs.StringVar(&o.debugAddr, "debug-addr", "",
		"serve expvar and pprof on this address (e.g. localhost:6060) for live profiling")
	return o
}

// runRecorder observes one command execution: it captures the metrics
// registry before the run so the manifest and the -v footer report only
// this run's delta (the registry is process-wide and `arena all` chains
// many commands), accumulates experiment cells, and finalizes the
// manifest.
type runRecorder struct {
	o       *obsFlags
	fs      *flag.FlagSet
	verbose bool
	start   time.Time
	before  obs.Snapshot
	man     *obs.Manifest
}

// begin starts recording the named command. Call after flag parsing so the
// manifest sees resolved values.
func (o *obsFlags) begin(cmd string, fs *flag.FlagSet, seed int64, verbose bool) (*runRecorder, error) {
	if o.debugAddr != "" {
		addr, err := obs.StartDebug(o.debugAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars and /debug/pprof/\n", addr)
	}
	man := obs.NewManifest(cmd, flagConfig(fs), seed)
	man.Host.SIMD = linalg.SIMDEnabled()
	return &runRecorder{
		o: o, fs: fs, verbose: verbose,
		start:  time.Now(),
		before: obs.Capture(),
		man:    man,
	}, nil
}

// addResults records one cell's per-round game results.
func (r *runRecorder) addResults(name string, rs []core.GameResult) {
	accs := make([]float64, len(rs))
	f1s := make([]float64, len(rs))
	for i, g := range rs {
		accs[i] = g.Accuracy
		f1s[i] = g.F1
	}
	r.man.AddCell(name, "accuracy", accs).F1 = f1s
}

// finish prints the -v footer and writes the manifest if -out was given.
func (r *runRecorder) finish() error {
	wall := time.Since(r.start)
	delta := obs.Capture().Sub(r.before)
	if r.verbose {
		printObsFooter(wall, delta)
	}
	if r.o.out == "" {
		return nil
	}
	path := r.o.out
	if path == "auto" {
		path = filepath.Join("runs",
			fmt.Sprintf("%s-%s.json", r.man.Command, time.Now().UTC().Format("20060102-150405")))
	}
	r.man.WallNS = int64(wall)
	r.man.Metrics = delta
	if err := r.man.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote run manifest %s\n", path)
	return nil
}

// flagConfig collects the full resolved configuration of a parsed flag set
// — defaults included — so a manifest pins every knob, not just the ones
// typed on the command line.
func flagConfig(fs *flag.FlagSet) map[string]string {
	cfg := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		cfg[f.Name] = f.Value.String()
	})
	return cfg
}

// printObsFooter is the -v footer: phase timings, compile-cache counters
// and kernel-dispatch counts for this run (delta, not process totals).
func printObsFooter(wall time.Duration, d obs.Snapshot) {
	ft := d.Timers["phase.featurize"].Total()
	tt := d.Timers["phase.train"].Total()
	fmt.Printf("timing: wall %v | featurize %v + train %v across %d rounds (cpu-time, parallel)\n",
		wall.Round(time.Millisecond), ft.Round(time.Millisecond),
		tt.Round(time.Millisecond), d.Counters["phase.rounds"])
	hits, misses := d.Counters["progcache.hits"], d.Counters["progcache.misses"]
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("progcache: %d hits / %d misses (%.1f%% hit rate), %d modules cached, compile %v, clone %v, thaw %v (%d)\n",
		hits, misses, 100*ratio, progcache.Snapshot().Entries,
		d.Timers["progcache.compile"].Total().Round(time.Millisecond),
		d.Timers["progcache.clone"].Total().Round(time.Millisecond),
		d.Timers["progcache.thaw"].Total().Round(time.Millisecond),
		d.Counters["progcache.thaw.hits"])
	simdCalls := d.Counters["linalg.gemm_nt.simd"] + d.Counters["linalg.gemm_nn.simd"] +
		d.Counters["linalg.gemm_tn.simd"]
	portable := d.Counters["linalg.gemm_nt.portable"] + d.Counters["linalg.gemm_nn.portable"] +
		d.Counters["linalg.gemm_tn.portable"]
	kernels := "portable"
	if linalg.SIMDEnabled() {
		kernels = "avx2+fma"
	}
	fmt.Printf("linalg: %s kernels | %d simd / %d portable gemm calls, %d matvec\n",
		kernels, simdCalls, portable, d.Counters["linalg.matvec"])
}

// cmdReport loads two run manifests and prints their accuracy/timing diff:
// the regression check that closes the loop on `make perf` / `make bench`
// numbers. With -tol >= 0 it fails when any cell's mean accuracy moved
// more than the tolerance.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	tol := fs.Float64("tol", -1,
		"fail (exit nonzero) if any cell's |mean accuracy delta| exceeds this (negative = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: arena report [-tol x] baseline.json candidate.json")
	}
	a, err := obs.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := obs.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	d := obs.DiffManifests(a, b)
	d.WriteText(os.Stdout)
	if *tol >= 0 && d.MaxAbsDelta > *tol {
		return fmt.Errorf("accuracy regression: max |mean delta| %.4f exceeds tolerance %.4f",
			d.MaxAbsDelta, *tol)
	}
	return nil
}
