package main

import (
	"errors"
	"flag"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// TestRunCellsEdges pins the clamping contract shared with core.ClampWorkers:
// zero cells spawn nothing, worker counts are clamped to [1, n], and every
// cell runs exactly once.
func TestRunCellsEdges(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
	}{
		{"no cells, default workers", 0, 0},
		{"no cells, many workers", 0, 5},
		{"fewer cells than workers", 3, 10},
		{"default workers", 5, 0},
		{"negative workers", 1, -2},
		{"sequential", 4, 1},
		{"parallel", 8, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			seen := make([]atomic.Bool, tc.n)
			err := runCells(tc.n, tc.workers, func(i int) error {
				calls.Add(1)
				if seen[i].Swap(true) {
					return fmt.Errorf("cell %d ran twice", i)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := calls.Load(); got != int64(tc.n) {
				t.Fatalf("ran %d cells, want %d", got, tc.n)
			}
		})
	}
}

// TestRunCellsFirstErrorInCellOrder: when several cells fail, the error for
// the lowest-indexed cell is reported, independent of goroutine scheduling.
func TestRunCellsFirstErrorInCellOrder(t *testing.T) {
	errA := errors.New("cell 2 failed")
	errB := errors.New("cell 6 failed")
	for trial := 0; trial < 20; trial++ {
		err := runCells(8, 4, func(i int) error {
			switch i {
			case 2:
				return errA
			case 6:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: got %v, want the lowest-indexed cell's error", trial, err)
		}
	}
}

// TestParallelCellTally drives real games through runCells — the path the
// old per-command tally struct was written on — and checks the atomic
// metrics registry under load. `make race` runs this with -race; it is the
// regression test for the phase-tally data race the obs registry replaced.
func TestParallelCellTally(t *testing.T) {
	set, err := dataset.Generate(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Capture()
	pipelines := []core.Pipeline{
		{Embedding: "histogram", Model: "rf"},
		{Embedding: "histogram", Model: "knn"},
		{Embedding: "milepost", Model: "knn"},
		{Embedding: "milepost", Model: "lr"},
	}
	results := make([]core.GameResult, len(pipelines))
	err = runCells(len(pipelines), len(pipelines), func(i int) error {
		rs, _, err := core.RunRoundsN(set, core.GameConfig{
			Game: 0, Pipeline: pipelines[i], Seed: 7,
		}, 2, 2)
		if err != nil {
			return err
		}
		results[i] = rs[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := obs.Capture().Sub(before)
	rounds := int64(len(pipelines) * 2)
	if got := d.Counters["phase.rounds"]; got != rounds {
		t.Fatalf("phase.rounds delta = %d, want %d", got, rounds)
	}
	if d.Timers["phase.featurize"].Count != rounds {
		t.Fatalf("featurize spans = %d, want one per round (%d)",
			d.Timers["phase.featurize"].Count, rounds)
	}
	if d.Timers["phase.fit"].Count != rounds {
		t.Fatalf("fit spans = %d, want one per round (%d)", d.Timers["phase.fit"].Count, rounds)
	}
	for i, r := range results {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("cell %d accuracy out of range: %v", i, r.Accuracy)
		}
	}
}

// TestFlagConfigCapturesDefaults: manifests must pin every knob, including
// flags the user never typed.
func TestFlagConfigCapturesDefaults(t *testing.T) {
	fs := flag.NewFlagSet("game0", flag.ContinueOnError)
	c := addCommon(fs)
	if err := fs.Parse([]string{"-classes", "7"}); err != nil {
		t.Fatal(err)
	}
	cfg := flagConfig(fs)
	if cfg["classes"] != "7" {
		t.Fatalf("typed flag not captured: %q", cfg["classes"])
	}
	if cfg["rounds"] != "3" {
		t.Fatalf("default flag not captured: %q", cfg["rounds"])
	}
	for _, name := range []string{"seed", "out", "debug-addr"} {
		if _, ok := cfg[name]; !ok {
			t.Fatalf("flag %q missing from config", name)
		}
	}
	_ = c
}
