package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/coevo"
)

// cmdCoevo runs the online adversarial arena: persistent evader populations
// co-evolve against a defending classifier that is incrementally retrained
// each generation on the evasions it failed to catch. Deterministic for a
// fixed seed at any -j; per-generation numbers land in the run manifest so
// two runs diff with `arena report`:
//
//	arena coevo -gens 10 -strategy ga -model lr -out runs/coevo.json
//	arena coevo -gens 5 -push http://127.0.0.1:8090   # hot-swap each checkpoint
func cmdCoevo(args []string) error {
	fs := flag.NewFlagSet("coevo", flag.ExitOnError)
	c := addCommon(fs)
	gens := fs.Int("gens", 5, "arena generations to play")
	strategy := fs.String("strategy", "ga", "evader strategy for every population (rs|mcmc|drlsg|ga)")
	model := fs.String("model", "lr", "defending classifier (warm-start retrained when supported)")
	embedding := fs.String("embedding", "histogram", "vector embedding both sides fight in")
	attackers := fs.Int("attackers", 4, "evader populations (each rooted at one attack-pool program)")
	pop := fs.Int("pop", 4, "members per population")
	trainFrac := fs.Float64("train-frac", 0.5, "defender training split; the rest is halved into holdout and attack pool")
	tol := fs.Float64("tol", 0.02, "holdout accuracy a retrain may lose before the checkpoint is rolled back")
	eloK := fs.Float64("elo-k", 0, "Elo K-factor per generation block (0 = default 32)")
	push := fs.String("push", "", "gateway or serve base URL to hot-swap every accepted checkpoint into")
	snapdir := fs.String("snapdir", "", "directory for per-generation snapshot files (<model>.genNNN.snap)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := c.obs.begin("coevo", fs, c.seed, c.verbose)
	if err != nil {
		return err
	}
	set, err := c.loadSet()
	if err != nil {
		return err
	}
	cfg := coevo.Config{
		Set:         set,
		Embedding:   *embedding,
		Model:       *model,
		Strategy:    *strategy,
		Attackers:   *attackers,
		PopSize:     *pop,
		Generations: *gens,
		TrainFrac:   *trainFrac,
		Tolerance:   *tol,
		EloK:        *eloK,
		Seed:        c.seed,
		Workers:     c.workers(),
		SnapshotDir: *snapdir,
	}
	if *push != "" {
		cfg.Push = newHTTPPusher(*push)
	}
	res, err := coevo.Run(cfg)
	if err != nil {
		return err
	}

	rec.man.AddCell("coevo/baseline/holdout_acc", "accuracy", []float64{res.BaselineAcc})
	w := newTable()
	fmt.Fprintf(w, "gen\tevasion\tatt elo\tdef elo\tholdout\tdiversity\tnew\tver\tretrain\trolled back\n")
	for _, gr := range res.Generations {
		retrain := "-"
		if gr.RetrainNS > 0 {
			retrain = time.Duration(gr.RetrainNS).Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%d\t%.3f\t%.1f\t%.1f\t%.4f\t%.2f\t%d\t%d\t%s\t%v\n",
			gr.Gen, gr.EvasionRate, gr.AttackerElo, gr.DefenderElo, gr.HoldoutAcc,
			gr.Diversity, gr.NewEvasions, gr.Version, retrain, gr.RolledBack)
		cell := fmt.Sprintf("coevo/gen%03d", gr.Gen)
		rec.man.AddCell(cell+"/evasion_rate", "rate", []float64{gr.EvasionRate})
		rec.man.AddCell(cell+"/attacker_elo", "elo", []float64{gr.AttackerElo})
		rec.man.AddCell(cell+"/defender_elo", "elo", []float64{gr.DefenderElo})
		rec.man.AddCell(cell+"/holdout_acc", "accuracy", []float64{gr.HoldoutAcc})
		rec.man.AddCell(cell+"/diversity", "distance", []float64{gr.Diversity})
		rec.man.AddCell(cell+"/new_evasions", "count", []float64{float64(gr.NewEvasions)})
		rec.man.AddCell(cell+"/version", "count", []float64{float64(gr.Version)})
		// Wall time is real but run-dependent: recorded, excluded from diffs.
		rec.man.AddVolatileCell(cell+"/retrain_ms", "latency_ms",
			[]float64{float64(gr.RetrainNS) / 1e6})
	}
	w.Flush()
	last := res.Generations[len(res.Generations)-1]
	fmt.Printf("final: defender v%d, attacker Elo %.1f vs defender Elo %.1f, baseline acc %.4f\n",
		res.FinalVersion, last.AttackerElo, last.DefenderElo, res.BaselineAcc)
	return rec.finish()
}

// httpPusher hot-swaps arena checkpoints into a serve instance or a gateway
// fleet over PUT /v1/models/{name}.
type httpPusher struct {
	base   string
	client *http.Client
}

func newHTTPPusher(addr string) *httpPusher {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &httpPusher{base: base, client: &http.Client{Timeout: 30 * time.Second}}
}

func (p *httpPusher) Push(model string, snapshot []byte, gen int64) error {
	req, err := http.NewRequest(http.MethodPut,
		p.base+"/v1/models/"+url.PathEscape(model), bytes.NewReader(snapshot))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("push gen %d to %s: status %d: %s",
			gen, p.base, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// cmdHealthz polls a serve or gateway /healthz until it reports the wanted
// status (and, for gateways, a minimum count of healthy replicas), or the
// wait budget runs out. Exit 0 on success makes it a shell-friendly
// assertion for smoke tests:
//
//	arena healthz -addr http://127.0.0.1:8090 -want ok -healthy 3 -wait 45s
func cmdHealthz(args []string) error {
	fs := flag.NewFlagSet("healthz", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serve or gateway base URL")
	want := fs.String("want", "ok", "required status field value")
	healthy := fs.Int("healthy", 0, "minimum healthy replicas (gateway targets only; 0 = don't check)")
	wait := fs.Duration("wait", 45*time.Second, "polling budget before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	// The status decode is shape-agnostic: serve answers {status}, the
	// gateway additionally lists replicas.
	type health struct {
		Status   string `json:"status"`
		Replicas []struct {
			Addr    string `json:"addr"`
			Healthy bool   `json:"healthy"`
		} `json:"replicas"`
	}
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(*wait)
	var lastErr error
	for {
		var h health
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			lastErr = err
		} else {
			err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h)
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case err != nil:
				lastErr = err
			case h.Status != *want:
				lastErr = fmt.Errorf("status %q, want %q", h.Status, *want)
			default:
				up := 0
				for _, r := range h.Replicas {
					if r.Healthy {
						up++
					}
				}
				if *healthy > 0 && up < *healthy {
					lastErr = fmt.Errorf("%d/%d replicas healthy, want %d", up, len(h.Replicas), *healthy)
					break
				}
				if len(h.Replicas) > 0 {
					fmt.Printf("healthz: %s (%d/%d replicas healthy)\n", h.Status, up, len(h.Replicas))
				} else {
					fmt.Printf("healthz: %s\n", h.Status)
				}
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz: %s not %q within %v: %v", base, *want, *wait, lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
