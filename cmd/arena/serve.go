package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/progcache"
	"repro/internal/serve"
	"repro/internal/stats"
)

// cmdServe stands up the HTTP classification service on trained model
// snapshots. Snapshots live as <dir>/<model>.snap; any requested model
// without one is trained on a generated dataset and saved, so a cold start
// is self-contained:
//
//	arena serve -addr 127.0.0.1:8080 -snapshots runs/snap -models rf,lr
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	snapDir := fs.String("snapshots", "snapshots", "directory of <model>.snap files (missing ones are trained and saved here)")
	models := fs.String("models", "rf,lr", "comma-separated vector models to serve")
	embedding := fs.String("embedding", "histogram", "vector embedding for source-bearing requests (must match training)")
	classes := fs.Int("classes", 8, "problem classes when training missing snapshots")
	per := fs.Int("per", 12, "solutions per class when training missing snapshots")
	seed := fs.Int64("seed", 1, "training seed for missing snapshots")
	maxInFlight := fs.Int("max-inflight", 128, "admitted requests before the server answers 429")
	maxBatch := fs.Int("max-batch", 32, "max classify requests coalesced into one batched predict pass")
	window := fs.Duration("batch-window", 2*time.Millisecond, "how long a batch waits to fill after its first request")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline (504 past it)")
	engine := fs.String("engine", "tree",
		"execution engine for transform requests with execute=true (tree = reference interpreter, vm = compiled bytecode)")
	cacheCap := fs.Int("cache-cap", progcache.DefaultUntrustedCap,
		"LRU slots for compiles of client-supplied sources (0 disables retention)")
	verbose := fs.Bool("v", false, "print the obs footer after shutdown")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := splitNames(*models)
	if len(names) == 0 {
		return fmt.Errorf("serve: -models is empty")
	}
	progcache.SetUntrustedCap(*cacheCap)
	rec, err := o.begin("serve", fs, *seed, *verbose)
	if err != nil {
		return err
	}

	loaded, lineage, err := loadOrTrainSnapshots(*snapDir, names, *embedding, *classes, *per, *seed)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Models:         loaded,
		Lineage:        lineage,
		Embedding:      *embedding,
		MaxInFlight:    *maxInFlight,
		MaxBatch:       *maxBatch,
		BatchWindow:    *window,
		RequestTimeout: *timeout,
		Engine:         *engine,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving %s on http://%s (POST /v1/classify /v1/transform, GET /healthz /metricz)\n",
		strings.Join(names, ","), bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "drained")
	return rec.finish()
}

// loadOrTrainSnapshots loads each model from dir/<name>.snap, training and
// saving the missing ones in a single deterministic pass. The second return
// carries the lineage stamps found in pre-existing snapshot files (arena
// checkpoints carry them; root and freshly trained snapshots do not), so a
// replica booted on a co-evolution checkpoint reports its ancestry from the
// first /healthz.
func loadOrTrainSnapshots(dir string, names []string, embedding string, classes, per int, seed int64) (map[string]ml.Model, map[string]ml.Lineage, error) {
	loaded := make(map[string]ml.Model, len(names))
	lineage := make(map[string]ml.Lineage)
	var missing []string
	for _, name := range names {
		path := filepath.Join(dir, name+".snap")
		m, lin, err := loadSnapshotFile(path)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "loaded snapshot %s\n", path)
			loaded[name] = m
			if lin != (ml.Lineage{}) {
				lineage[name] = lin
			}
		case os.IsNotExist(err):
			missing = append(missing, name)
		default:
			return nil, nil, fmt.Errorf("serve: snapshot %s: %w", path, err)
		}
	}
	if len(missing) == 0 {
		return loaded, lineage, nil
	}
	fmt.Fprintf(os.Stderr, "training missing snapshots %s (classes=%d per=%d seed=%d)\n",
		strings.Join(missing, ","), classes, per, seed)
	set, err := dataset.Generate(classes, per, seed)
	if err != nil {
		return nil, nil, err
	}
	trained, err := core.TrainVectorModels(set, embedding, missing, seed)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	for _, name := range missing {
		path := filepath.Join(dir, name+".snap")
		if err := ml.SaveFile(path, trained[name]); err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "wrote snapshot %s\n", path)
		loaded[name] = trained[name]
	}
	return loaded, lineage, nil
}

// loadSnapshotFile is ml.LoadFile plus the frame's lineage stamp.
func loadSnapshotFile(path string) (ml.Model, ml.Lineage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ml.Lineage{}, err
	}
	defer f.Close()
	return ml.LoadLineage(f)
}

// cmdLoadgen offers classify load to a running server or gateway and
// reports latency quantiles and throughput; with -out the numbers land in a
// run manifest that `arena report` can diff against a baseline. -sweep runs
// one round per QPS value to cut a latency-under-load curve, and when the
// target is a gateway the manifest additionally carries per-replica
// p50/p90/p99 cells pulled from its /metricz.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server or gateway base URL")
	qps := fs.Int("qps", 50, "offered classify requests per second")
	sweep := fs.String("sweep", "", "comma-separated QPS list: one load round per value (overrides -qps)")
	dur := fs.Duration("dur", 5*time.Second, "how long to offer load per round")
	conc := fs.Int("conc", 4, "concurrent client workers (closed-loop mode)")
	open := fs.Bool("open", false, "open-loop arrivals: one goroutine per due request instead of a fixed pool")
	clientInflight := fs.Int("client-inflight", 1024, "open-loop cap on outstanding requests; arrivals past it count as dropped")
	wait := fs.Duration("wait", 0, "poll /healthz this long for the server to come up before starting")
	strict := fs.Bool("strict", false, "exit nonzero unless every request was answered 200 or shed with 429")
	models := fs.String("models", "", "comma-separated model subset per request (empty = all loaded)")
	embedding := fs.String("embedding", "histogram", "embedding for the payload vectors")
	classes := fs.Int("classes", 8, "problem classes for the payload corpus")
	per := fs.Int("per", 4, "solutions per class for the payload corpus")
	seed := fs.Int64("seed", 1, "corpus seed")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	qpsList := []int{*qps}
	if *sweep != "" {
		qpsList = nil
		for _, part := range strings.Split(*sweep, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || q <= 0 {
				return fmt.Errorf("loadgen: bad -sweep entry %q", part)
			}
			qpsList = append(qpsList, q)
		}
	}
	rec, err := o.begin("loadgen", fs, *seed, false)
	if err != nil {
		return err
	}

	set, err := dataset.Generate(*classes, *per, *seed)
	if err != nil {
		return err
	}
	vectors := make([][]float64, 0, len(set.Samples))
	for _, s := range set.Samples {
		v, err := core.EmbedSource(s.Source, *embedding)
		if err != nil {
			return err
		}
		vectors = append(vectors, v)
	}

	base := strings.TrimRight(*addr, "/")
	w := newTable()
	fmt.Fprintf(w, "qps\toffered\tsent\tok\trejected\ttimeout\tdropped\terrors\tthroughput\tp50\tp90\tp99\n")
	var totalOK, totalLost int
	waitBudget := *wait
	for _, q := range qpsList {
		rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
			BaseURL:           base,
			QPS:               q,
			Duration:          *dur,
			Concurrency:       *conc,
			OpenLoop:          *open,
			MaxClientInFlight: *clientInflight,
			Vectors:           vectors,
			Models:            splitNames(*models),
			WaitReady:         waitBudget,
		})
		if err != nil {
			return err
		}
		waitBudget = 0 // only the first round waits for readiness

		p50, p90, p99 := rep.Quantile(0.50), rep.Quantile(0.90), rep.Quantile(0.99)
		fmt.Fprintf(w, "%d\t%.1f/s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f req/s\t%.2f ms\t%.2f ms\t%.2f ms\n",
			q, rep.OfferedQPS(), rep.Sent, rep.OK, rep.Rejected, rep.Timeout, rep.Dropped, rep.Errors,
			rep.Throughput(), p50, p90, p99)

		prefix := "loadgen"
		if len(qpsList) > 1 {
			prefix = fmt.Sprintf("loadgen/qps=%d", q)
		}
		rec.man.AddCell(prefix+"/p50_ms", "latency_ms", []float64{p50})
		rec.man.AddCell(prefix+"/p90_ms", "latency_ms", []float64{p90})
		rec.man.AddCell(prefix+"/p99_ms", "latency_ms", []float64{p99})
		rec.man.AddCell(prefix+"/throughput_rps", "throughput", []float64{rep.Throughput()})
		rec.man.AddCell(prefix+"/offered_qps", "throughput", []float64{rep.OfferedQPS()})
		rec.man.AddCell(prefix+"/target_qps", "throughput", []float64{float64(rep.TargetQPS)})
		rec.man.AddCell(prefix+"/ok", "count", []float64{float64(rep.OK)})
		rec.man.AddCell(prefix+"/rejected", "count", []float64{float64(rep.Rejected)})
		rec.man.AddSummaryCell(prefix+"/latency_ms", "latency_ms", stats.Summarize(rep.LatencyMS))
		totalOK += rep.OK
		totalLost += rep.Timeout + rep.Errors + rep.Dropped
	}
	w.Flush()

	addReplicaCells(rec, base)
	if err := rec.finish(); err != nil {
		return err
	}
	if totalOK == 0 {
		return fmt.Errorf("loadgen: no request succeeded")
	}
	if *strict && totalLost > 0 {
		return fmt.Errorf("loadgen: -strict: %d requests lost (timeout/error/dropped)", totalLost)
	}
	return nil
}

// addReplicaCells pulls the target's /metricz and surfaces the gateway's
// per-replica latency quantiles and request counters as manifest cells. A
// plain serve target publishes no gateway.replica.* series, so this is a
// silent no-op there (and on any scrape failure — the load numbers still
// stand on their own).
func addReplicaCells(rec *runRecorder, baseURL string) {
	resp, err := http.Get(baseURL + "/metricz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return
	}
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "gateway.replica.") && strings.HasSuffix(name, ".latency") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		id := strings.TrimSuffix(strings.TrimPrefix(name, "gateway."), ".latency") // "replica.<i>"
		toMS := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		rec.man.AddCell("gateway/"+id+"/p50_ms", "latency_ms", []float64{toMS(h.Quantile(0.50))})
		rec.man.AddCell("gateway/"+id+"/p90_ms", "latency_ms", []float64{toMS(h.Quantile(0.90))})
		rec.man.AddCell("gateway/"+id+"/p99_ms", "latency_ms", []float64{toMS(h.Quantile(0.99))})
		if c, ok := snap.Counters["gateway."+id+".requests"]; ok {
			rec.man.AddCell("gateway/"+id+"/requests", "count", []float64{float64(c)})
		}
	}
}

// splitNames parses a comma-separated name list into a sorted,
// de-duplicated slice, so flag order never changes training order (and
// with it the sub-seed each model draws).
func splitNames(s string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
