package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/serve"
	"repro/internal/stats"
)

// cmdServe stands up the HTTP classification service on trained model
// snapshots. Snapshots live as <dir>/<model>.snap; any requested model
// without one is trained on a generated dataset and saved, so a cold start
// is self-contained:
//
//	arena serve -addr 127.0.0.1:8080 -snapshots runs/snap -models rf,lr
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	snapDir := fs.String("snapshots", "snapshots", "directory of <model>.snap files (missing ones are trained and saved here)")
	models := fs.String("models", "rf,lr", "comma-separated vector models to serve")
	embedding := fs.String("embedding", "histogram", "vector embedding for source-bearing requests (must match training)")
	classes := fs.Int("classes", 8, "problem classes when training missing snapshots")
	per := fs.Int("per", 12, "solutions per class when training missing snapshots")
	seed := fs.Int64("seed", 1, "training seed for missing snapshots")
	maxInFlight := fs.Int("max-inflight", 128, "admitted requests before the server answers 429")
	maxBatch := fs.Int("max-batch", 32, "max classify requests coalesced into one batched predict pass")
	window := fs.Duration("batch-window", 2*time.Millisecond, "how long a batch waits to fill after its first request")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline (504 past it)")
	engine := fs.String("engine", "tree",
		"execution engine for transform requests with execute=true (tree = reference interpreter, vm = compiled bytecode)")
	verbose := fs.Bool("v", false, "print the obs footer after shutdown")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := splitNames(*models)
	if len(names) == 0 {
		return fmt.Errorf("serve: -models is empty")
	}
	rec, err := o.begin("serve", fs, *seed, *verbose)
	if err != nil {
		return err
	}

	loaded, err := loadOrTrainSnapshots(*snapDir, names, *embedding, *classes, *per, *seed)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Models:         loaded,
		Embedding:      *embedding,
		MaxInFlight:    *maxInFlight,
		MaxBatch:       *maxBatch,
		BatchWindow:    *window,
		RequestTimeout: *timeout,
		Engine:         *engine,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving %s on http://%s (POST /v1/classify /v1/transform, GET /healthz /metricz)\n",
		strings.Join(names, ","), bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "drained")
	return rec.finish()
}

// loadOrTrainSnapshots loads each model from dir/<name>.snap, training and
// saving the missing ones in a single deterministic pass.
func loadOrTrainSnapshots(dir string, names []string, embedding string, classes, per int, seed int64) (map[string]ml.Model, error) {
	loaded := make(map[string]ml.Model, len(names))
	var missing []string
	for _, name := range names {
		path := filepath.Join(dir, name+".snap")
		m, err := ml.LoadFile(path)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "loaded snapshot %s\n", path)
			loaded[name] = m
		case os.IsNotExist(err):
			missing = append(missing, name)
		default:
			return nil, fmt.Errorf("serve: snapshot %s: %w", path, err)
		}
	}
	if len(missing) == 0 {
		return loaded, nil
	}
	fmt.Fprintf(os.Stderr, "training missing snapshots %s (classes=%d per=%d seed=%d)\n",
		strings.Join(missing, ","), classes, per, seed)
	set, err := dataset.Generate(classes, per, seed)
	if err != nil {
		return nil, err
	}
	trained, err := core.TrainVectorModels(set, embedding, missing, seed)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for _, name := range missing {
		path := filepath.Join(dir, name+".snap")
		if err := ml.SaveFile(path, trained[name]); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "wrote snapshot %s\n", path)
		loaded[name] = trained[name]
	}
	return loaded, nil
}

// cmdLoadgen offers classify load to a running server and reports latency
// quantiles and throughput; with -out the numbers land in a run manifest
// that `arena report` can diff against a baseline.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	qps := fs.Int("qps", 50, "offered classify requests per second")
	dur := fs.Duration("dur", 5*time.Second, "how long to offer load")
	conc := fs.Int("conc", 4, "concurrent client workers")
	wait := fs.Duration("wait", 0, "poll /healthz this long for the server to come up before starting")
	models := fs.String("models", "", "comma-separated model subset per request (empty = all loaded)")
	embedding := fs.String("embedding", "histogram", "embedding for the payload vectors")
	classes := fs.Int("classes", 8, "problem classes for the payload corpus")
	per := fs.Int("per", 4, "solutions per class for the payload corpus")
	seed := fs.Int64("seed", 1, "corpus seed")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := o.begin("loadgen", fs, *seed, false)
	if err != nil {
		return err
	}

	set, err := dataset.Generate(*classes, *per, *seed)
	if err != nil {
		return err
	}
	vectors := make([][]float64, 0, len(set.Samples))
	for _, s := range set.Samples {
		v, err := core.EmbedSource(s.Source, *embedding)
		if err != nil {
			return err
		}
		vectors = append(vectors, v)
	}

	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:     strings.TrimRight(*addr, "/"),
		QPS:         *qps,
		Duration:    *dur,
		Concurrency: *conc,
		Vectors:     vectors,
		Models:      splitNames(*models),
		WaitReady:   *wait,
	})
	if err != nil {
		return err
	}

	p50, p90, p99 := rep.Quantile(0.50), rep.Quantile(0.90), rep.Quantile(0.99)
	w := newTable()
	fmt.Fprintf(w, "sent\tok\trejected\ttimeout\terrors\tthroughput\tp50\tp90\tp99\n")
	fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.1f req/s\t%.2f ms\t%.2f ms\t%.2f ms\n",
		rep.Sent, rep.OK, rep.Rejected, rep.Timeout, rep.Errors,
		rep.Throughput(), p50, p90, p99)
	w.Flush()

	rec.man.AddCell("loadgen/p50_ms", "latency_ms", []float64{p50})
	rec.man.AddCell("loadgen/p90_ms", "latency_ms", []float64{p90})
	rec.man.AddCell("loadgen/p99_ms", "latency_ms", []float64{p99})
	rec.man.AddCell("loadgen/throughput_rps", "throughput", []float64{rep.Throughput()})
	rec.man.AddCell("loadgen/ok", "count", []float64{float64(rep.OK)})
	rec.man.AddCell("loadgen/rejected", "count", []float64{float64(rep.Rejected)})
	rec.man.AddSummaryCell("loadgen/latency_ms", "latency_ms", stats.Summarize(rep.LatencyMS))
	if err := rec.finish(); err != nil {
		return err
	}
	if rep.OK == 0 {
		return fmt.Errorf("loadgen: no request succeeded (%d sent, %d rejected, %d timed out, %d errors)",
			rep.Sent, rep.Rejected, rep.Timeout, rep.Errors)
	}
	return nil
}

// splitNames parses a comma-separated name list into a sorted,
// de-duplicated slice, so flag order never changes training order (and
// with it the sub-seed each model draws).
func splitNames(s string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
