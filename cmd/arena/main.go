// Command arena runs the experiments of "A Game-Based Framework to Compare
// Program Classifiers and Evaders" (CGO 2023) on the from-scratch Go
// reproduction of the paper's stack. Every figure of the evaluation has a
// subcommand; scales default to laptop-friendly sizes and grow to the
// paper's via flags (-classes 104 -per 500 -rounds 10).
//
// Usage:
//
//	arena <command> [flags]
//
// Commands:
//
//	game0      RQ2  baseline classification (Figure 7, first chart)
//	game1      RQ3  evasion with an unaware classifier (Figure 8)
//	game2      RQ3  evasion with an aware classifier (Figure 9)
//	game3      RQ4  optimization-based normalization (Figure 11)
//	embeddings RQ1  compare the nine embeddings (Figures 5 and 6)
//	models     RQ2  compare the six models + memory (Figure 7)
//	classes    RQ5  accuracy vs. class count (Figure 12)
//	distance        histogram distances per evader (Figure 10)
//	speedup    RQ6  optimizer vs. obfuscator performance (Figure 13)
//	discover   RQ7  identify the obfuscator (Figure 14)
//	malware    RQ8  Mirai-family study (Figure 15; -av adds Figure 16)
//	coevo           online adversarial arena: co-evolving evader populations
//	                vs. an incrementally retrained classifier
//	serve           HTTP classification service on trained model snapshots
//	loadgen         drive a serve instance and report latency quantiles
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/passes"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "game0", "game1", "game2", "game3":
		err = cmdGame(int(cmd[4]-'0'), args)
	case "gen":
		err = cmdGen(args)
	case "all":
		err = cmdAll(args)
	case "embeddings":
		err = cmdEmbeddings(args)
	case "models":
		err = cmdModels(args)
	case "classes":
		err = cmdClasses(args)
	case "distance":
		err = cmdDistance(args)
	case "speedup":
		err = cmdSpeedup(args)
	case "discover":
		err = cmdDiscover(args)
	case "malware":
		err = cmdMalware(args)
	case "coevo":
		err = cmdCoevo(args)
	case "healthz":
		err = cmdHealthz(args)
	case "serve":
		err = cmdServe(args)
	case "gateway":
		err = cmdGateway(args)
	case "push":
		err = cmdPush(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "fuzz":
		err = cmdFuzz(args)
	case "report":
		err = cmdReport(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "arena: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "arena: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: arena <command> [flags]

commands:
  game0 | game1 | game2 | game3   play one adversarial game
  gen                             generate a dataset and save it as JSON
  all                             run every experiment at a reduced scale
  embeddings                      compare the nine program embeddings (Fig 5/6)
  models                          compare the six models (Fig 7)
  classes                         accuracy vs. number of classes (Fig 12)
  distance                        histogram distance per evader (Fig 10)
  speedup                         optimizer vs. obfuscator runtimes (Fig 13)
  discover                        obfuscator identification (Fig 14)
  malware                         Mirai-family study (Fig 15; -av for Fig 16)
  coevo [-gens n] [-strategy s] [-push url]
                                  online adversarial arena: evader populations
                                  co-evolve against a classifier retrained each
                                  generation on its missed evasions (Elo-scored,
                                  checkpointed with rollback; -push hot-swaps
                                  every accepted checkpoint into a fleet)
  healthz [-want ok] [-healthy n] poll a serve or gateway /healthz until it
                                  reports the wanted status (smoke-test helper)
  serve                           HTTP classification service on model snapshots
                                  (micro-batched predict, 429 overload shedding,
                                  hot-swappable snapshots, graceful drain on SIGTERM)
  gateway [-spawn n | -replicas a,b,c]
                                  sharded front tier over N serve replicas:
                                  consistent-hash routing, health probing, retries,
                                  hedged requests, fleet-wide snapshot hot-swap
  push -model m -snap file.snap   hot-swap a model snapshot through a gateway
                                  (or a single serve instance)
  loadgen [-qps n] [-dur d] [-conc n] [-sweep a,b,c] [-open] [-strict]
                                  drive a serve instance or gateway and report
                                  latency quantiles + throughput (per-replica
                                  quantiles when the target is a gateway)
  fuzz [-n n] [-seed s] [-dur d]  differential-fuzz every pass, pipeline and
                                  obfuscator against the O0 interpreter oracle;
                                  shrunk failing programs land in -crashers
  report [-tol x] baseline.json candidate.json
                                  diff two run manifests (accuracy + timings);
                                  -tol fails the run on regressions beyond x

every experiment command also accepts:
  -out <path|auto>                write a JSON run manifest (config, seed,
                                  host, per-cell accuracies, phase timings,
                                  cache and kernel counters)
  -debug-addr <addr>              serve expvar + pprof for live profiling

run "arena <command> -h" for the command's flags`)
}

// common flags
type commonFlags struct {
	classes  int
	perClass int
	rounds   int
	seed     int64
	dataset  string
	jobs     int
	verbose  bool
	obs      *obsFlags
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{obs: addObs(fs)}
	fs.IntVar(&c.classes, "classes", 16, "number of problem classes (paper: 104)")
	fs.IntVar(&c.perClass, "per", 24, "solutions per class (paper: 500)")
	fs.IntVar(&c.rounds, "rounds", 3, "repetitions per configuration (paper: 10)")
	fs.Int64Var(&c.seed, "seed", 1, "master random seed")
	fs.StringVar(&c.dataset, "dataset", "", "load the dataset from a JSON file (see 'arena gen') instead of generating")
	fs.IntVar(&c.jobs, "j", 0, "parallel workers for rounds and experiment cells (0 = GOMAXPROCS)")
	fs.BoolVar(&c.verbose, "v", false, "print compile-cache and per-phase timing counters")
	fs.Func("train-workers", "goroutines per model Fit/evaluation (0 = GOMAXPROCS); "+
		"results are byte-identical for any value — set 1 when -j already saturates the machine",
		func(s string) error {
			n, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("bad -train-workers %q: %w", s, err)
			}
			ml.SetTrainWorkers(n)
			return nil
		})
	return c
}

// workers resolves the -j flag.
func (c *commonFlags) workers() int {
	if c.jobs > 0 {
		return c.jobs
	}
	return runtime.GOMAXPROCS(0)
}

// runCells runs fn(0..n-1) on a pool of workers and returns the first error
// in cell order (so error reporting does not depend on scheduling). Worker
// sizing goes through core.ClampWorkers like every other parallel site: a
// zero-cell run spawns nothing and returns immediately.
func runCells(n, workers int, fn func(i int) error) error {
	workers = core.ClampWorkers(workers, n)
	if workers == 0 {
		return nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// loadSet builds or loads the dataset per the common flags.
func (c *commonFlags) loadSet() (*dataset.Set, error) {
	if c.dataset != "" {
		return dataset.LoadFile(c.dataset)
	}
	return dataset.Generate(c.classes, c.perClass, c.seed)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	c := addCommon(fs)
	out := fs.String("o", "dataset.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := c.obs.begin("gen", fs, c.seed, c.verbose)
	if err != nil {
		return err
	}
	set, err := dataset.Generate(c.classes, c.perClass, c.seed)
	if err != nil {
		return err
	}
	if err := set.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples (%d classes) to %s\n", len(set.Samples), set.NumClasses, *out)
	return rec.finish()
}

// cmdAll plays the role of the original artifact's "./run.sh all": every
// experiment in sequence, at a scale that finishes in minutes rather than
// the artifact's 19 days.
func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	classes := fs.Int("classes", 10, "problem classes for the game experiments")
	per := fs.Int("per", 16, "solutions per class")
	rounds := fs.Int("rounds", 2, "rounds per configuration")
	seed := fs.Int64("seed", 1, "master seed")
	jobs := fs.Int("j", 0, "parallel workers passed to every step (0 = GOMAXPROCS)")
	trainWorkers := fs.String("train-workers", "", "per-Fit goroutines passed to every step (empty = leave default)")
	verbose := fs.Bool("v", false, "print per-step wall clock and compile-cache counters")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := o.begin("all", fs, *seed, *verbose)
	if err != nil {
		return err
	}
	c := func(extra ...string) []string {
		out := []string{
			"-classes", fmt.Sprint(*classes), "-per", fmt.Sprint(*per),
			"-rounds", fmt.Sprint(*rounds), "-seed", fmt.Sprint(*seed),
			"-j", fmt.Sprint(*jobs),
		}
		if *trainWorkers != "" {
			out = append(out, "-train-workers", *trainWorkers)
		}
		if *verbose {
			out = append(out, "-v")
		}
		return append(out, extra...)
	}
	steps := []struct {
		title string
		run   func() error
	}{
		{"Figure 7 — models (game 0)", func() error { return cmdModels(c()) }},
		{"Figure 8 — game 1 (evader: ollvm)", func() error { return cmdGame(1, c("-evader", "ollvm")) }},
		{"Figure 9 — game 2 (evader: ollvm)", func() error { return cmdGame(2, c("-evader", "ollvm")) }},
		{"Figure 11 — game 3 (evader: rs, norm O3)", func() error { return cmdGame(3, c("-evader", "rs", "-norm", "O3")) }},
		{"Figure 12 — class sweep", func() error {
			sweepArgs := []string{"-per", fmt.Sprint(*per), "-rounds", fmt.Sprint(*rounds),
				"-seed", fmt.Sprint(*seed), "-j", fmt.Sprint(*jobs), "-sweep", "4,8,16"}
			if *verbose {
				sweepArgs = append(sweepArgs, "-v")
			}
			return cmdClasses(sweepArgs)
		}},
		{"Figure 10 — histogram distances", func() error { return cmdDistance(c()) }},
		{"Figure 13 — speedup", func() error { return cmdSpeedup([]string{"-seed", fmt.Sprint(*seed)}) }},
		{"Figure 14 — obfuscator identification", func() error {
			return cmdDiscover([]string{"-per", "15", "-seed", fmt.Sprint(*seed)})
		}},
		{"Figures 15/16 — malware study", func() error {
			return cmdMalware([]string{"-train", "10", "-challenge", "5", "-av",
				"-seed", fmt.Sprint(*seed)})
		}},
	}
	for _, s := range steps {
		fmt.Printf("\n=== %s ===\n", s.title)
		stepStart := time.Now()
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.title, err)
		}
		if *verbose {
			fmt.Printf("step wall clock: %v\n", time.Since(stepStart).Round(time.Millisecond))
		}
	}
	if *verbose {
		fmt.Println()
	}
	return rec.finish()
}

func newTable() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func cmdGame(game int, args []string) error {
	fs := flag.NewFlagSet(fmt.Sprintf("game%d", game), flag.ExitOnError)
	c := addCommon(fs)
	embedding := fs.String("embedding", "histogram", "program embedding")
	model := fs.String("model", "rf", "classification model")
	evader := fs.String("evader", "ollvm", "evader transformation (games 1-3)")
	norm := fs.String("norm", "O3", "normalizer for game 3 (O0..O3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := passes.ParseLevel(*norm)
	if err != nil {
		return err
	}
	rec, err := c.obs.begin(fmt.Sprintf("game%d", game), fs, c.seed, c.verbose)
	if err != nil {
		return err
	}
	set, err := c.loadSet()
	if err != nil {
		return err
	}
	cfg := core.GameConfig{
		Game:   game,
		Evader: *evader,
		Pipeline: core.Pipeline{
			Embedding: *embedding, Model: *model, Normalizer: lvl,
		},
		Seed: c.seed,
	}
	results, sum, err := core.RunRoundsN(set, cfg, c.rounds, c.workers())
	if err != nil {
		return err
	}
	cell := fmt.Sprintf("game%d/%s/%s", game, *embedding, *model)
	if game >= 1 {
		cell += "/" + *evader
	}
	if game == 3 {
		cell += "/" + lvl.String()
	}
	rec.addResults(cell, results)
	w := newTable()
	fmt.Fprintf(w, "game\tevader\tembedding\tmodel\taccuracy\tF1\n")
	for _, r := range results {
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%.4f\t%.4f\n", game, *evader, *embedding, *model, r.Accuracy, r.F1)
	}
	w.Flush()
	fmt.Printf("summary: %s  (train %d / test %d per round)\n",
		sum, results[0].NumTrain, results[0].NumTest)
	return rec.finish()
}

func cmdEmbeddings(args []string) error {
	fs := flag.NewFlagSet("embeddings", flag.ExitOnError)
	c := addCommon(fs)
	games := fs.String("games", "0", "comma-separated games to play (paper: 0 then 1,2,3)")
	evader := fs.String("evader", "ollvm", "evader for games 1-3")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := c.obs.begin("embeddings", fs, c.seed, c.verbose)
	if err != nil {
		return err
	}
	set, err := c.loadSet()
	if err != nil {
		return err
	}
	embeddings := []string{
		"cfg", "cfg_compact", "cdfg", "cdfg_compact", "cdfg_plus",
		"programl", "ir2vec", "milepost", "histogram",
	}
	// Build the (game, embedding) cell matrix up front so the cells can run
	// on a worker pool and still print in the paper's order.
	type cell struct {
		game    int
		emb     string
		model   string
		results []core.GameResult
		sum     string
	}
	var cells []*cell
	for _, gs := range strings.Split(*games, ",") {
		var game int
		if _, err := fmt.Sscanf(strings.TrimSpace(gs), "%d", &game); err != nil {
			return fmt.Errorf("bad game %q", gs)
		}
		for _, emb := range embeddings {
			// Figure 5 uses the dgcnn for graphs and its cnn variant for
			// vector embeddings (the only models fitting all embeddings).
			model := "dgcnn"
			if emb == "ir2vec" || emb == "milepost" || emb == "histogram" {
				model = "cnn"
			}
			cells = append(cells, &cell{game: game, emb: emb, model: model})
		}
	}
	err = runCells(len(cells), c.workers(), func(i int) error {
		cl := cells[i]
		cfg := core.GameConfig{
			Game: cl.game, Evader: *evader,
			Pipeline: core.Pipeline{Embedding: cl.emb, Model: cl.model, Normalizer: passes.O3},
			Seed:     c.seed,
		}
		results, sum, err := core.RunRoundsN(set, cfg, c.rounds, c.workers())
		if err != nil {
			return err
		}
		cl.results = results
		cl.sum = fmt.Sprintf("%.4f\t%.4f", sum.Mean, sum.Std)
		return nil
	})
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintf(w, "game\tembedding\tmodel\tmean acc\tstd\n")
	for _, cl := range cells {
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\n", cl.game, cl.emb, cl.model, cl.sum)
		rec.addResults(fmt.Sprintf("game%d/%s/%s", cl.game, cl.emb, cl.model), cl.results)
	}
	w.Flush()
	return rec.finish()
}

func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	c := addCommon(fs)
	embedding := fs.String("embedding", "histogram", "embedding fed to every model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := c.obs.begin("models", fs, c.seed, c.verbose)
	if err != nil {
		return err
	}
	set, err := c.loadSet()
	if err != nil {
		return err
	}
	models := ml.VectorNames()
	rows := make([]string, len(models))
	cellResults := make([][]core.GameResult, len(models))
	err = runCells(len(models), c.workers(), func(i int) error {
		cfg := core.GameConfig{
			Game:     0,
			Pipeline: core.Pipeline{Embedding: *embedding, Model: models[i]},
			Seed:     c.seed,
		}
		results, sum, err := core.RunRoundsN(set, cfg, c.rounds, c.workers())
		if err != nil {
			return err
		}
		cellResults[i] = results
		rows[i] = fmt.Sprintf("%s\t%.4f\t%.4f\t%s", models[i], sum.Mean, sum.Std,
			fmtBytes(results[len(results)-1].ModelMemory))
		return nil
	})
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintf(w, "model\tmean acc\tstd\tmodel memory\n")
	for i, row := range rows {
		fmt.Fprintln(w, row)
		rec.addResults(fmt.Sprintf("game0/%s/%s", *embedding, models[i]), cellResults[i])
	}
	w.Flush()
	return rec.finish()
}

func cmdClasses(args []string) error {
	fs := flag.NewFlagSet("classes", flag.ExitOnError)
	c := addCommon(fs)
	model := fs.String("model", "rf", "classification model")
	sweep := fs.String("sweep", "4,8,16,32,64", "class counts to evaluate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var counts []int
	for _, cs := range strings.Split(*sweep, ",") {
		var m int
		if _, err := fmt.Sscanf(strings.TrimSpace(cs), "%d", &m); err != nil {
			return fmt.Errorf("bad class count %q", cs)
		}
		counts = append(counts, m)
	}
	rec, err := c.obs.begin("classes", fs, c.seed, c.verbose)
	if err != nil {
		return err
	}
	rows := make([]string, len(counts))
	cellResults := make([][]core.GameResult, len(counts))
	err = runCells(len(counts), c.workers(), func(i int) error {
		m := counts[i]
		set, err := dataset.Generate(m, c.perClass, c.seed)
		if err != nil {
			return err
		}
		cfg := core.GameConfig{
			Game:     0,
			Pipeline: core.Pipeline{Embedding: "histogram", Model: *model},
			Seed:     c.seed,
		}
		results, sum, err := core.RunRoundsN(set, cfg, c.rounds, c.workers())
		if err != nil {
			return err
		}
		f1 := 0.0
		for _, r := range results {
			f1 += r.F1
		}
		f1 /= float64(len(results))
		cellResults[i] = results
		rows[i] = fmt.Sprintf("%d\t%s\t%.4f\t%.4f\t%.4f", m, *model, sum.Mean, f1, 1.0/float64(m))
		return nil
	})
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintf(w, "classes\tmodel\tmean acc\tmean F1\trandom\n")
	for i, row := range rows {
		fmt.Fprintln(w, row)
		rec.addResults(fmt.Sprintf("classes=%d/%s", counts[i], *model), cellResults[i])
	}
	w.Flush()
	return rec.finish()
}

func cmdDistance(args []string) error {
	fs := flag.NewFlagSet("distance", flag.ExitOnError)
	c := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := c.obs.begin("distance", fs, c.seed, c.verbose)
	if err != nil {
		return err
	}
	set, err := dataset.Generate(c.classes, minInt(c.perClass, 10), c.seed)
	if err != nil {
		return err
	}
	transforms := []string{"none", "O3", "bcf", "fla", "sub", "ollvm", "rs", "mcmc", "drlsg"}
	res, err := core.DistanceAnalysis(set.Samples, transforms, c.seed)
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintf(w, "transform\tmean dist\tstd\tmax\n")
	for _, r := range res {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", r.Transform, r.Summary.Mean, r.Summary.Std, r.Summary.Max)
		rec.man.AddSummaryCell("distance/"+r.Transform, "distance", r.Summary)
	}
	w.Flush()
	return rec.finish()
}

func cmdSpeedup(args []string) error {
	fs := flag.NewFlagSet("speedup", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed for the obfuscator")
	engine := fs.String("engine", "tree",
		"execution engine measuring the step counts (tree = reference interpreter, vm = compiled bytecode)")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := o.begin("speedup", fs, *seed, false)
	if err != nil {
		return err
	}
	rep, err := core.SpeedupEngine(*seed, *engine)
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintf(w, "program\tO0 steps\tO3 steps\tollvm steps\tO3 speedup\tollvm slowdown\n")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2fx\t%.2fx\n",
			r.Name, r.O0Steps, r.O3Steps, r.OllvmSteps, r.O3Speedup, r.OllvmSlowdown)
		rec.man.AddCell("speedup/"+r.Name+"/O3", "speedup", []float64{r.O3Speedup})
		rec.man.AddCell("speedup/"+r.Name+"/ollvm", "slowdown", []float64{r.OllvmSlowdown})
	}
	w.Flush()
	fmt.Printf("geomean: O3 %.2fx faster, O-LLVM %.2fx slower (paper: 2.32x / 8.33x)\n",
		rep.GeoO3Speedup, rep.GeoOllvmSlowdown)
	rec.man.AddCell("speedup/geomean/O3", "speedup", []float64{rep.GeoO3Speedup})
	rec.man.AddCell("speedup/geomean/ollvm", "slowdown", []float64{rep.GeoOllvmSlowdown})
	return rec.finish()
}

func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	per := fs.Int("per", 40, "programs per transformer (paper: 500)")
	model := fs.String("model", "rf", "classification model")
	seed := fs.Int64("seed", 1, "random seed")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := o.begin("discover", fs, *seed, false)
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintf(w, "dataset\taccuracy\tF1\trandom\n")
	for d := 1; d <= 4; d++ {
		res, err := core.Discover(core.DiscoverConfig{
			Dataset: d, PerTransformer: *per, Model: *model, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "dataset%d\t%.4f\t%.4f\t%.4f\n", d, res.Accuracy, res.F1, res.RandomHit)
		w.Flush()
		cell := rec.man.AddCell(fmt.Sprintf("discover/dataset%d/%s", d, *model),
			"accuracy", []float64{res.Accuracy})
		cell.F1 = []float64{res.F1}
	}
	return rec.finish()
}

func cmdMalware(args []string) error {
	fs := flag.NewFlagSet("malware", flag.ExitOnError)
	trainPos := fs.Int("train", 36, "family training seeds (paper: 36)")
	challenge := fs.Int("challenge", 12, "challenges per label (paper: 12)")
	av := fs.Bool("av", false, "also run the signature-scanner comparison (Figure 16)")
	seed := fs.Int64("seed", 1, "random seed")
	o := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := o.begin("malware", fs, *seed, false)
	if err != nil {
		return err
	}
	res, err := core.MalwareStudy(core.MalwareConfig{
		TrainPos: *trainPos, Challenge: *challenge,
		Models: []string{"cnn", "rf"}, Seed: *seed,
	})
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintf(w, "training set\tsamples\tcnn acc\trf acc\n")
	for i := range res.TrainSizes {
		fmt.Fprintf(w, "t%d\t%d\t%.4f\t%.4f\n", i+1, res.TrainSizes[i],
			res.Acc["cnn"][i], res.Acc["rf"][i])
		rec.man.AddCell(fmt.Sprintf("malware/t%d/cnn", i+1), "accuracy", []float64{res.Acc["cnn"][i]})
		rec.man.AddCell(fmt.Sprintf("malware/t%d/rf", i+1), "accuracy", []float64{res.Acc["rf"][i]})
	}
	w.Flush()
	if !*av {
		return rec.finish()
	}
	rows, err := core.AntivirusComparison(core.MalwareConfig{
		TrainPos: *trainPos, Challenge: *challenge, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nsignature scanner vs specialised rf (Figure 16):")
	w = newTable()
	fmt.Fprintf(w, "transform\tscanner acc\trf(full) acc\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\n", r.Transformer, r.AVDetect, r.RFDetect)
		rec.man.AddCell("malware/av/"+r.Transformer+"/scanner", "accuracy", []float64{r.AVDetect})
		rec.man.AddCell("malware/av/"+r.Transformer+"/rf", "accuracy", []float64{r.RFDetect})
	}
	w.Flush()
	return rec.finish()
}

func fmtBytes(n int64) string {
	switch {
	case n > 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n > 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
