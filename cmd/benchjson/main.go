// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a JSON object keyed by benchmark name, for machine-readable
// records like BENCH_ml.json. Lines that are not benchmark results are
// ignored, so the raw `go test` stream can be piped straight through.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Iters    int64   `json:"iters"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
}

func parseLine(line string) (string, result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	var r result
	r.Iters = iters
	ok := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			break
		}
		switch f[i+1] {
		case "ns/op":
			r.NsOp, ok = v, true
		case "B/op":
			r.BOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		}
	}
	if !ok {
		return "", result{}, false
	}
	return f[0], r, true
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if name, r, ok := parseLine(line); ok {
			results[name] = r
		}
		// Echo the stream so the caller still sees live progress.
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf strings.Builder
	buf.WriteString("{\n")
	for i, n := range names {
		b, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&buf, "  %q: %s", n, b)
		if i < len(names)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")

	if *out == "" {
		fmt.Print(buf.String())
		return
	}
	if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
