// Command minicc is the standalone driver for the MiniC toolchain: it
// compiles a source file to the SSA IR, optionally optimizes and/or
// obfuscates it, and can print, verify, execute or profile the result.
//
// Usage:
//
//	minicc [flags] file.c
//
// Examples:
//
//	minicc -emit-ir prog.c                # print the -O0 IR
//	minicc -O2 -emit-ir prog.c            # optimized IR
//	minicc -obf fla -run prog.c           # flatten, then execute
//	minicc -O3 -run -stats prog.c         # run and report dynamic counts
//	minicc -passes mem2reg,sccp prog.c    # custom pass sequence
//	echo 5 7 | minicc -run -stdin prog.c  # feed the input builtins
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/srcobf"
)

func main() {
	var (
		level     = flag.String("O", "0", "optimization level 0..3")
		obf       = flag.String("obf", "", "obfuscation: sub, bcf, fla, ollvm")
		srcStrat  = flag.String("src-obf", "", "source-level strategy: rs, mcmc, drlsg, ga")
		passList  = flag.String("passes", "", "comma-separated pass list (overrides -O)")
		emitIR    = flag.Bool("emit-ir", false, "print the final IR")
		emitDot   = flag.Bool("emit-dot", false, "print the CFG in Graphviz dot syntax")
		emitSrc   = flag.Bool("emit-src", false, "print the (possibly transformed) source")
		run       = flag.Bool("run", false, "execute main and print its result")
		stats     = flag.Bool("stats", false, "with -run: print dynamic instruction count")
		stdin     = flag.Bool("stdin", false, "with -run: read whitespace-separated ints for input()")
		seed      = flag.Int64("seed", 1, "random seed for obfuscation")
		maxSteps  = flag.Int64("max-steps", 0, "interpreter instruction budget (0 = default)")
		verifyOut = flag.Bool("verify", true, "verify the final module")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := compile(flag.Arg(0), options{
		level: *level, obf: *obf, srcStrat: *srcStrat, passList: *passList,
		emitIR: *emitIR, emitDot: *emitDot, emitSrc: *emitSrc, run: *run,
		stats: *stats, stdin: *stdin, seed: *seed, maxSteps: *maxSteps,
		verify: *verifyOut,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "minicc: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	level, obf, srcStrat, passList string
	emitIR, emitDot, emitSrc       bool
	run, stats, stdin              bool
	seed, maxSteps                 int64
	verify                         bool
}

func compile(path string, opt options) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	src := string(data)
	rng := rand.New(rand.NewSource(opt.seed))

	if opt.srcStrat != "" {
		src, err = srcobf.TransformSource(src, opt.srcStrat, rng)
		if err != nil {
			return err
		}
	}
	if opt.emitSrc {
		fmt.Print(src)
		if !opt.emitIR && !opt.run {
			return nil
		}
	}

	mod, err := minic.CompileSource(src, path)
	if err != nil {
		return err
	}

	switch {
	case opt.passList != "":
		for _, name := range strings.Split(opt.passList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := passes.RunPass(mod, name); err != nil {
				return err
			}
		}
	default:
		lvl, err := passes.ParseLevel("O" + opt.level)
		if err != nil {
			return err
		}
		if err := passes.Optimize(mod, lvl); err != nil {
			return err
		}
	}

	if opt.obf != "" {
		if err := obfus.Apply(mod, opt.obf, rng); err != nil {
			return err
		}
	}
	if opt.verify {
		if err := mod.Verify(); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
	}
	if opt.emitIR {
		fmt.Print(mod.String())
	}
	if opt.emitDot {
		fmt.Print(mod.DOT())
	}
	if !opt.run {
		return nil
	}

	var input []int64
	if opt.stdin {
		input, err = readInts(os.Stdin)
		if err != nil {
			return err
		}
	}
	res, err := interp.Run(mod, interp.Options{Input: input, MaxSteps: opt.maxSteps})
	if err != nil {
		return err
	}
	if res.Output != "" {
		fmt.Print(res.Output)
	}
	fmt.Printf("=> %d\n", res.Ret)
	if opt.stats {
		fmt.Printf("dynamic instructions: %d\n", res.Steps)
		fmt.Printf("static instructions:  %d\n", mod.NumInstrs())
		fmt.Printf("functions:            %d\n", len(mod.Functions))
		blocks := 0
		for _, f := range mod.Functions {
			blocks += len(f.Blocks)
		}
		fmt.Printf("basic blocks:         %d\n", blocks)
		printHistogramTop(mod)
	}
	return nil
}

func readInts(f *os.File) ([]int64, error) {
	var out []int64
	sc := bufio.NewScanner(f)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input %q: %w", sc.Text(), err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

// printHistogramTop shows the five most frequent opcodes.
func printHistogramTop(m *ir.Module) {
	counts := make(map[ir.Opcode]int)
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) { counts[in.Op]++ })
	}
	type kv struct {
		op ir.Opcode
		n  int
	}
	var all []kv
	for op, n := range counts {
		all = append(all, kv{op, n})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].n > all[i].n || (all[j].n == all[i].n && all[j].op < all[i].op) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	fmt.Printf("top opcodes:          ")
	for i, e := range all {
		if i == 5 {
			break
		}
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s×%d", e.op, e.n)
	}
	fmt.Println()
}
