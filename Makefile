# Build, test and race-check targets for the reproduction.
#
#   make build   compile everything
#   make test    tier-1 suite (what CI must keep green)
#   make race    vet + race-detector pass over the concurrent packages
#                (the game harness and the embeddings) — run on every PR
#   make bench   regenerate the paper figures as benchmark metrics
#   make perf    the harness speedup benchmark (compile cache + parallel rounds)
#   make check   everything CI runs: build + test + race

GO ?= go

.PHONY: build test race bench perf check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./internal/embed/...

bench:
	$(GO) test -run xxx -bench . -benchmem .

perf:
	$(GO) test -run xxx -bench BenchmarkHarnessRounds -benchtime 5x .

check: build test race
