# Build, test and race-check targets for the reproduction.
#
#   make build   compile everything
#   make test    tier-1 suite (what CI must keep green)
#   make race    vet + race-detector pass over the concurrent packages
#                (the game harness, the embeddings and parallel training)
#                — run on every PR
#   make bench   kernel/training benchmarks -> BENCH_ml.json
#   make bench-ir  flat-IR benchmarks (Flatten cost, flat-share vs clone,
#                graph builders over the flat view) -> BENCH_ir.json
#   make bench-interp  execution-engine benchmarks (tree interpreter vs the
#                compiled bytecode VM over the Benchmark-Game kernels)
#                -> BENCH_interp.json
#   make bench-figures  regenerate the paper figures as benchmark metrics
#   make perf    the harness speedup benchmark (compile cache + parallel rounds)
#   make cross   cross-compile for non-amd64 targets (portable kernel paths
#                must build — no panic stubs allowed to hide there)
#   make serve-smoke  boot `arena serve` on a scratch snapshot dir, push one
#                loadgen round through /v1/classify, then SIGTERM and require
#                a clean drain (exit 0)
#   make gateway-smoke  boot `arena gateway -spawn 3`, run strict loadgen
#                through it while killing one replica and hot-swapping a
#                snapshot across the surviving fleet; requires zero non-429
#                loss, a reportable per-replica latency manifest and a clean
#                SIGTERM drain — run on every PR
#   make fuzz-smoke  short deterministic differential-fuzz campaign: 200
#                generated programs through every pass, pipeline and
#                obfuscator against the O0 interpreter oracle — run on
#                every PR
#   make fuzz    long local campaign over the full transform set (composed
#                evader pipelines included); shrunk failing programs land
#                in testdata/crashers/
#   make fuzz-smoke-vm  the fuzz-smoke campaign cross-validated on the
#                bytecode VM (-engine vm): every cell must match the tree
#                interpreter bit-for-bit
#   make thaw-smoke  clone-vs-thaw equivalence campaign: 200 generated
#                programs, every module-level transform applied to a deep
#                clone and to a thawed flat-view copy with the same seed;
#                the two must verify, print and behave bit-for-bit the same
#                — run on every PR
#   make coevo-smoke  fixed-seed 3-generation adversarial arena at two
#                worker counts, manifests diffed at zero tolerance, then a
#                second arena run pushing every checkpoint into a spawned
#                3-replica gateway fleet that must stay fully healthy —
#                run on every PR
#   make bench-coevo  arena benchmarks (one full generation; warm vs cold
#                retrain) -> BENCH_coevo.json
#   make bench-transform  clone-vs-thaw module-copy benchmarks (µs/op and
#                allocs/op for Clone/Thaw/CompileClone/CompileThaw, plus the
#                harness-round and coevo-generation numbers that ride on the
#                copy path) -> BENCH_transform.json
#   make check   everything CI runs: build + test + race + cross +
#                serve-smoke + gateway-smoke + coevo-smoke + fuzz-smoke +
#                fuzz-smoke-vm + thaw-smoke

GO ?= go

.PHONY: build test race bench bench-ir bench-interp bench-coevo bench-transform bench-figures perf cross serve-smoke gateway-smoke coevo-smoke fuzz-smoke fuzz-smoke-vm thaw-smoke fuzz check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./internal/coevo/... ./internal/core/... ./internal/embed/... \
		./internal/ir/... ./internal/linalg/... ./internal/ml/... ./internal/obs/... \
		./internal/progcache/... ./internal/serve/... ./internal/gateway/... \
		./internal/vm/... ./cmd/arena/...

# arm64 covers the !amd64 dispatch build; 386 additionally shakes out
# 64-bit-assuming code on a 32-bit word size.
cross:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=386 $(GO) build ./...

# Model-training and kernel benchmarks, recorded machine-readably. -cpu 1
# pins the Fit benches to one worker goroutine so ns/op measures the kernels,
# not the host's core count; the -cpu 1,4 sub-benches inside BenchmarkFit*
# cover the parallel path. Results land in BENCH_ml.json.
bench:
	{ $(GO) test -run xxx -bench 'BenchmarkFit|BenchmarkPredict' -benchmem -benchtime 5x -cpu 1 ./internal/ml/ ; \
	  $(GO) test -run xxx -bench 'BenchmarkGraphBuilders|BenchmarkHistogram' -benchmem ./internal/embed/ ; \
	  $(GO) test -run xxx -bench BenchmarkHarnessRounds -benchtime 3x . ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_ml.json
	@echo wrote BENCH_ml.json

# Flat-IR numbers, recorded machine-readably: what a flatten costs, what the
# old per-consumer Clone cost, what a shared flat hit costs (nothing), and
# the graph/vector builders over the flat view. Results land in
# BENCH_ir.json.
bench-ir:
	{ $(GO) test -run xxx -bench 'BenchmarkFlatten|BenchmarkClone|BenchmarkFlatShare|BenchmarkCompileClone' -benchmem ./internal/ir/ ; \
	  $(GO) test -run xxx -bench 'BenchmarkGraphBuilders|BenchmarkHistogram|BenchmarkVectorBuilders' -benchmem ./internal/embed/ ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_ir.json
	@echo wrote BENCH_ir.json

# Tree interpreter vs compiled bytecode VM over the Benchmark-Game kernels
# (the Figure-13 workload). BenchmarkVM must sustain >= 5x the interpreter's
# steps/second; steps/op is reported so the JSON also proves both engines
# executed identical step counts. Results land in BENCH_interp.json.
bench-interp:
	$(GO) test -run xxx -bench 'BenchmarkInterp|BenchmarkVM' -benchmem ./internal/vm/ \
	| $(GO) run ./cmd/benchjson -o BENCH_interp.json
	@echo wrote BENCH_interp.json

# Arena benchmarks: one full co-evolution generation (evolve + verdict +
# Elo + retrain + checkpoint) and the warm-vs-cold retrain comparison.
# Results land in BENCH_coevo.json.
bench-coevo:
	$(GO) test -run xxx -bench 'BenchmarkCoevoGeneration|BenchmarkRetrainWarmVsCold' -benchmem -benchtime 5x ./internal/coevo/ \
	| $(GO) run ./cmd/benchjson -o BENCH_coevo.json
	@echo wrote BENCH_coevo.json

bench-figures:
	$(GO) test -run xxx -bench . -benchmem .

perf:
	$(GO) test -run xxx -bench BenchmarkHarnessRounds -benchtime 5x .

# End-to-end serving smoke: train-on-first-boot snapshots in a temp dir,
# one loadgen round against the live server, then a SIGTERM drain that must
# exit 0. Fails loudly if the round trip or the drain hangs.
serve-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/arena" ./cmd/arena || exit 1; \
	"$$tmp/arena" serve -addr 127.0.0.1:18873 -snapshots "$$tmp/snap" \
		-models rf,lr -classes 4 -per 6 2>"$$tmp/serve.log" & \
	pid=$$!; \
	if ! "$$tmp/arena" loadgen -addr http://127.0.0.1:18873 -wait 30s \
		-qps 20 -dur 1s -conc 2 -classes 4 -per 2 ; then \
		echo "serve-smoke: loadgen failed; server log:" ; cat "$$tmp/serve.log" ; \
		kill "$$pid" 2>/dev/null ; exit 1 ; fi ; \
	kill -TERM "$$pid" && wait "$$pid" && echo "serve-smoke: clean drain"

# Sharded-tier smoke: gateway spawns 3 serve replicas, strict loadgen runs
# through the gateway while one replica is killed and a snapshot is
# hot-swapped across the surviving fleet; zero non-429 loss is required
# (-strict), the per-replica latency manifest must survive `arena report`,
# and the SIGTERM drain must exit 0.
gateway-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/arena" ./cmd/arena || exit 1; \
	"$$tmp/arena" gateway -addr 127.0.0.1:18960 -spawn 3 -snapshots "$$tmp/snap" \
		-models rf -classes 4 -per 6 2>"$$tmp/gw.log" & \
	gpid=$$!; \
	if ! "$$tmp/arena" loadgen -addr http://127.0.0.1:18960 -wait 60s \
		-qps 20 -dur 1s -conc 2 -classes 4 -per 2 ; then \
		echo "gateway-smoke: warmup loadgen failed; gateway log:" ; cat "$$tmp/gw.log" ; \
		kill "$$gpid" 2>/dev/null ; exit 1 ; fi ; \
	"$$tmp/arena" loadgen -addr http://127.0.0.1:18960 -strict \
		-qps 150 -dur 6s -conc 8 -classes 4 -per 2 -out "$$tmp/load.json" & \
	lpid=$$!; \
	sleep 2; \
	rpid=$$(sed -n 's/.*spawned replica .*pid \([0-9]*\)).*/\1/p' "$$tmp/gw.log" | head -1); \
	if [ -n "$$rpid" ]; then kill -9 "$$rpid" && echo "gateway-smoke: killed replica pid $$rpid"; fi; \
	sleep 1; \
	if ! "$$tmp/arena" push -addr http://127.0.0.1:18960 -model rf -snap "$$tmp/snap/rf.snap"; then \
		echo "gateway-smoke: snapshot push failed; gateway log:" ; cat "$$tmp/gw.log" ; \
		kill "$$gpid" "$$lpid" 2>/dev/null ; exit 1 ; fi ; \
	if ! wait "$$lpid"; then \
		echo "gateway-smoke: strict loadgen lost requests; gateway log:" ; cat "$$tmp/gw.log" ; \
		kill "$$gpid" 2>/dev/null ; exit 1 ; fi ; \
	"$$tmp/arena" report -tol 0 "$$tmp/load.json" "$$tmp/load.json" || { kill "$$gpid" 2>/dev/null ; exit 1 ; }; \
	if ! "$$tmp/arena" healthz -addr http://127.0.0.1:18960 -want ok -healthy 3 -wait 45s; then \
		echo "gateway-smoke: killed replica never rejoined; gateway log:" ; cat "$$tmp/gw.log" ; \
		kill "$$gpid" 2>/dev/null ; exit 1 ; fi ; \
	echo "gateway-smoke: killed replica rejoined"; \
	kill -TERM "$$gpid" && wait "$$gpid" && echo "gateway-smoke: clean drain"

# Adversarial-arena smoke: the same fixed-seed 3-generation co-evolution run
# at two worker counts must produce identical manifests (volatile timing
# cells excluded by `arena report` itself), and a run pushing every accepted
# checkpoint into a spawned 3-replica gateway must leave the fleet fully
# healthy with a clean drain.
coevo-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/arena" ./cmd/arena || exit 1; \
	"$$tmp/arena" coevo -gens 3 -classes 4 -per 8 -seed 5 -j 4 -out "$$tmp/a.json" || exit 1; \
	"$$tmp/arena" coevo -gens 3 -classes 4 -per 8 -seed 5 -j 8 -out "$$tmp/b.json" || exit 1; \
	"$$tmp/arena" report -tol 0 "$$tmp/a.json" "$$tmp/b.json" \
		|| { echo "coevo-smoke: manifests diverged across worker counts" ; exit 1 ; }; \
	"$$tmp/arena" gateway -addr 127.0.0.1:18970 -spawn 3 -snapshots "$$tmp/snap" \
		-models lr -classes 4 -per 6 2>"$$tmp/gw.log" & \
	gpid=$$!; \
	if ! "$$tmp/arena" healthz -addr http://127.0.0.1:18970 -want ok -healthy 3 -wait 60s; then \
		echo "coevo-smoke: fleet never became healthy; gateway log:" ; cat "$$tmp/gw.log" ; \
		kill "$$gpid" 2>/dev/null ; exit 1 ; fi ; \
	if ! "$$tmp/arena" coevo -gens 3 -classes 4 -per 8 -seed 5 -j 4 -model lr \
		-push http://127.0.0.1:18970; then \
		echo "coevo-smoke: arena push run failed; gateway log:" ; cat "$$tmp/gw.log" ; \
		kill "$$gpid" 2>/dev/null ; exit 1 ; fi ; \
	if ! "$$tmp/arena" healthz -addr http://127.0.0.1:18970 -want ok -healthy 3 -wait 10s; then \
		echo "coevo-smoke: fleet unhealthy after checkpoint pushes; gateway log:" ; cat "$$tmp/gw.log" ; \
		kill "$$gpid" 2>/dev/null ; exit 1 ; fi ; \
	kill -TERM "$$gpid" && wait "$$gpid" && echo "coevo-smoke: clean drain"

# Deterministic for the fixed seed: same verdict counts on every run and
# worker count. Fails (exit 1) on any semantic mismatch or verifier break.
fuzz-smoke:
	$(GO) run ./cmd/arena fuzz -n 200 -seed 1 -set smoke -small

# The same campaign cross-validated against the bytecode VM: every
# transformed cell additionally runs on -engine vm and must match the tree
# interpreter bit-for-bit (return, output, trap kind, step count).
fuzz-smoke-vm:
	$(GO) run ./cmd/arena fuzz -n 200 -seed 1 -set smoke -small -engine vm

# The thaw proof obligation at PR scale: 200 generated programs, every
# module-level transform applied to a deep clone and to a thawed flat-view
# copy with identical seeds; any print/verify/behaviour divergence or any
# mutation of the shared master fails the build.
thaw-smoke:
	$(GO) run ./cmd/arena fuzz -thaw -n 200 -seed 1 -set module -small

# Open-ended local campaign: bigger programs, composed evader pipelines,
# repeated batches for 2 minutes. Crashers are shrunk automatically.
fuzz:
	$(GO) run ./cmd/arena fuzz -n 200 -dur 2m -set module -v

# Clone-vs-thaw and progcache benchmarks for the transform fast path,
# recorded machine-readably. Results land in BENCH_transform.json.
bench-transform:
	{ $(GO) test -run xxx -bench 'BenchmarkClone|BenchmarkThaw|BenchmarkFlatten|BenchmarkCompileClone|BenchmarkCompileThaw' -benchmem ./internal/ir/ ; \
	  $(GO) test -run xxx -bench BenchmarkHarnessRounds -benchtime 3x . ; \
	  $(GO) test -run xxx -bench BenchmarkCoevoGeneration -benchmem -benchtime 5x ./internal/coevo/ ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_transform.json
	@echo wrote BENCH_transform.json

check: build test race cross serve-smoke gateway-smoke coevo-smoke fuzz-smoke fuzz-smoke-vm thaw-smoke
