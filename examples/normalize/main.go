// Normalize: the paper's Game-3 story in one run. A source-level evader
// (Zhang-style random search) deceives a naive classifier, but a classifier
// that optimizes every program with -O3 before looking at it is immune —
// SSA construction and the scalar pipeline dissolve the source tricks.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/passes"
)

func main() {
	set, err := dataset.Generate(8, 16, 11)
	if err != nil {
		log.Fatal(err)
	}
	play := func(game int, evader string, norm passes.Level) float64 {
		res, err := core.RunGame(set, core.GameConfig{
			Game:   game,
			Evader: evader,
			Pipeline: core.Pipeline{
				Embedding: "histogram", Model: "rf", Normalizer: norm,
			},
			Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Accuracy
	}

	fmt.Println("classifier: histogram + random forest, 8 classes")
	fmt.Printf("Game 0 (no evader):                    %.2f%%\n", 100*play(0, "", passes.O0))
	fmt.Printf("Game 1 (evader: rs, naive classifier): %.2f%%\n", 100*play(1, "rs", passes.O0))
	fmt.Printf("Game 3 (evader: rs, -O3 normalizer):   %.2f%%\n", 100*play(3, "rs", passes.O3))
	fmt.Println()
	fmt.Printf("Game 1 (evader: bcf):                  %.2f%%\n", 100*play(1, "bcf", passes.O0))
	fmt.Printf("Game 3 (evader: bcf, -O3 normalizer):  %.2f%%\n", 100*play(3, "bcf", passes.O3))
	fmt.Println("\nbcf's opaque predicates resist the normalizer; source-level tricks do not.")
}
