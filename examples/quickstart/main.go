// Quickstart: compile a program to IR, embed it, and play Game 0 — the
// classifier-only baseline — on a small synthetic benchmark.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/minic"
)

func main() {
	// 1. Compile a MiniC program to the SSA IR.
	src := `
	int fib(int n) {
		if (n < 2) return n;
		return fib(n - 1) + fib(n - 2);
	}
	int main() { return fib(10); }`
	mod, err := minic.CompileSource(src, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d functions, %d instructions\n",
		len(mod.Functions), mod.NumInstrs())

	// 2. Embed it: the 63-dimensional opcode histogram.
	hist := embed.Histogram(mod)
	nonzero := 0
	for _, v := range hist {
		if v > 0 {
			nonzero++
		}
	}
	fmt.Printf("histogram: %d of %d opcode dimensions populated\n", nonzero, len(hist))

	// 3. Build a balanced dataset: 8 programming problems, 16 randomized
	// solutions each (a miniature POJ-104).
	set, err := dataset.Generate(8, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d classes x %d solutions\n", set.NumClasses, len(set.Samples)/set.NumClasses)

	// 4. Play Game 0: train a random forest on histograms and classify
	// held-out solutions.
	res, err := core.RunGame(set, core.GameConfig{
		Game:     0,
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Game 0: accuracy %.2f%%, F1 %.2f%% (train %d / test %d)\n",
		100*res.Accuracy, 100*res.F1, res.NumTrain, res.NumTest)
}
