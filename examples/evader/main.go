// Evader: watch what each transformation does to one program — code size,
// histogram distance (the evader's objective) and dynamic instruction count
// (the performance price).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/interp"
	"repro/internal/minic"
)

func main() {
	src := `
	int main() {
		int sum = 0;
		for (int i = 0; i < 200; i++) {
			if (i % 3 == 0) sum += i * 2;
			else sum -= i;
		}
		return sum + 100000;
	}`
	base, err := minic.CompileSource(src, "base")
	if err != nil {
		log.Fatal(err)
	}
	h0 := embed.Histogram(base)
	r0, err := interp.Run(base, interp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "evader\tinstrs\thistogram dist\tdynamic steps\tslowdown\tresult\n")
	fmt.Fprintf(w, "none\t%d\t%.1f\t%d\t1.00x\t%d\n", base.NumInstrs(), 0.0, r0.Steps, r0.Ret)
	for _, tr := range []string{"O3", "sub", "bcf", "fla", "ollvm", "rs", "mcmc", "drlsg"} {
		m, err := core.Transform(src, tr, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := interp.Run(m, interp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if res.Ret != r0.Ret {
			log.Fatalf("%s changed the program's behaviour!", tr)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%d\t%.2fx\t%d\n",
			tr, m.NumInstrs(), embed.Distance(h0, embed.Histogram(m)),
			res.Steps, float64(res.Steps)/float64(r0.Steps), res.Ret)
	}
	w.Flush()
	fmt.Println("\nEvery transformation preserved the result — they only hide the code's shape.")
}
